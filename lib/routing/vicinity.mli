open Cr_graph

(** Vertex vicinities [B(u, l)] — the [l] closest vertices of [u] under
    [(distance, id)] tie-breaking — together with the radius [r_u(l)] and the
    Lemma 2 shortest-path routing rule.

    Property 1 (Awerbuch et al.): if [v] is in [B(u, l)] and [w] lies on a
    shortest path between [u] and [v], then [v] is in [B(w, l)]. It holds
    under exactly this tie-breaking, which is why Lemma 2 routing — every
    vertex forwarding along its own stored first edge — stays on a shortest
    path and always finds the next entry. *)

type t

val compute : Graph.t -> int -> int -> t
(** [compute g u l] is the vicinity [B(u, l)] (clamped to the component). *)

val compute_all : ?pool:Pool.t -> ?packed:bool -> Graph.t -> int -> t array
(** [compute_all g l] is [B(u, l)] for every vertex, indexed by vertex.
    The per-source truncated searches run on [pool] (default
    {!Pool.default}) with one reusable [Dijkstra.workspace] per domain;
    the result is identical to computing each vicinity serially.

    With [~packed:true] the family is stored as one shared int32/float64
    Bigarray block (16 B per member instead of boxed arrays plus a
    hashtable per vertex — the difference between ~32 GB and out-of-memory
    at n = 10^6, l ~ 2000). The searches are the same ones, so every
    accessor answers bit-identically; membership lookups become linear
    scans of at most [l] entries. Each vertex fills its own disjoint
    stride, so the parallel fill is deterministic too. *)

val source : t -> int

val size : t -> int

val mem : t -> int -> bool

val dist : t -> int -> float
(** [dist b v] is d(source, v). @raise Not_found if [v] is not a member. *)

val first_port : t -> int -> int
(** [first_port b v] is the first port on a shortest path from the source to
    member [v]. @raise Not_found if absent; @raise Invalid_argument on the
    source itself. *)

val radius : t -> float
(** [radius b] is [r_u(l)]: the largest distance [r] such that {e every}
    vertex at distance exactly [r] from the source is a member. On an
    unweighted graph every member satisfies [d <= radius + 1]
    (paper Section 2). *)

val members : t -> int array
(** Members in [(dist, id)] order; [members.(0)] is the source. On a
    packed vicinity the array is materialized per call — treat it as
    read-only and don't rely on physical identity across calls. *)

val max_dist : t -> float
(** Distance of the farthest member. *)

val rank : t -> int -> int option
(** [rank b v] is [v]'s position in the [(dist, id)] order (0 for the
    source), if a member. Because vicinities are nested — [B(u, l')] is a
    prefix of [B(u, l)] for [l' <= l] — [rank b v < l'] decides membership
    in the smaller vicinity, which the generalized schemes of Section 5 use
    to store only their largest vicinity. *)

val prefix_radius : t -> int -> float
(** [prefix_radius b l'] is [r_u(l')] for a prefix size [l' <= size b]
    (clamped), computed without re-running the search. *)

val nearest_of : t -> (int -> bool) -> int option
(** [nearest_of b pred] is the member closest to the source satisfying
    [pred] (ties by id), e.g. "nearest vertex of color c" or "some vertex of
    the hitting set". *)

val step : t array -> at:int -> dst:int -> int
(** Lemma 2: the port that [at] uses to forward a message addressed to
    [dst], assuming [dst] is in [B(at, l)]. The caller routes by repeating
    [step] at each intermediate vertex; Property 1 guarantees membership is
    preserved along the way. @raise Not_found if [dst] is not in [B(at, l)]. *)

val remap_ports : t -> (int -> int) -> t
(** [remap_ports b f] replaces every stored first-hop port [p] of the
    source by [f p] (members, distances and radius are shared, not
    copied). Used by the substrate's delta invalidation when a surviving
    vicinity's source had its ports renumbered: [f] maps an old port of
    the source to the same physical link's port on the new graph. *)

(** {1 Compiled form} *)

type compiled
(** The per-hop lookup compiled to flat arrays (see {!Compiled}): the
    member-to-position hashtable becomes a direct or binary-searched map;
    the member and first-port arrays are shared with the interpreted
    structure, so answers are identical by construction. *)

val compile : t -> compiled

val first_port_c : compiled -> int -> int
(** Identical answer (and exceptions) to {!first_port}. *)

val step_c : compiled array -> at:int -> dst:int -> int
(** Identical answer to {!step} over compiled vicinities. *)

(** {1 Snapshot form} *)

type frozen
(** Marshal-safe mirror of a vicinity array: packed-family Bigarray
    blocks become snapshot blobs, everything else rides the caller's
    Marshal residue. *)

val freeze : Snapshot.sink -> t array -> frozen

val thaw : Snapshot.source -> frozen -> t array
(** Rebuilds each packed family once, so slices share one block again.
    Callers with sub-structures that shared the builder's vicinity array
    should thaw once and pass the result down, restoring that sharing. *)

val payload_bytes : t array -> int
(** Bigarray payload bytes reachable from the array (shared families
    counted once) — the part of the footprint [Obj.reachable_words]
    cannot see. *)
