open Cr_graph

type spec = {
  seed : int;
  link_failure_rate : float;
  vertex_failure_rate : float;
  drop_prob : float;
  corrupt_prob : float;
}

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.spec: %s = %g not in [0, 1]" name r)

let spec ?(seed = 0) ?(link_failure_rate = 0.0) ?(vertex_failure_rate = 0.0)
    ?(drop_prob = 0.0) ?(corrupt_prob = 0.0) () =
  check_rate "link_failure_rate" link_failure_rate;
  check_rate "vertex_failure_rate" vertex_failure_rate;
  check_rate "drop_prob" drop_prob;
  check_rate "corrupt_prob" corrupt_prob;
  { seed; link_failure_rate; vertex_failure_rate; drop_prob; corrupt_prob }

type plan = {
  sp : spec;
  links : (int * int, unit) Hashtbl.t; (* keyed with u < v *)
  vertices : bool array;
  down_count : int;
}

(* SplitMix64 avalanche: the per-hop randomness must not depend on any
   global RNG state, or replays would diverge. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash4 a b c d =
  let open Int64 in
  let h = mix64 (add (of_int a) 0x9e3779b97f4a7c15L) in
  let h = mix64 (logxor h (of_int b)) in
  let h = mix64 (logxor h (of_int c)) in
  mix64 (logxor h (of_int d))

(* Uniform float in [0, 1) from the top 53 bits. *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let canon u v = if u < v then (u, v) else (v, u)

(* Tags keep the link / vertex / drop / corrupt streams independent. *)
let tag_link = 1
let tag_vertex = 2
let tag_hop = 3

let compile sp g =
  let n = Graph.n g in
  let m = Graph.m g in
  let links = Hashtbl.create 16 in
  let k_links =
    int_of_float (Float.round (sp.link_failure_rate *. float_of_int m))
  in
  if k_links > 0 then begin
    (* Rank edges by a seed-derived hash and fail the k smallest: the
       selection is a pure function of (seed, endpoints), independent of
       the order [Graph.edges] happens to produce. *)
    let ranked =
      Graph.fold_edges
        (fun u v _w acc -> ((hash4 sp.seed tag_link u v, u, v) :: acc))
        g []
    in
    let ranked =
      List.sort
        (fun (h1, u1, v1) (h2, u2, v2) ->
          let c = Int64.compare h1 h2 in
          if c <> 0 then c
          else if u1 <> u2 then Int.compare u1 u2
          else Int.compare v1 v2)
        ranked
    in
    List.iteri
      (fun i (_h, u, v) ->
        if i < k_links then Hashtbl.replace links (canon u v) ())
      ranked
  end;
  let vertices = Array.make (max n 1) false in
  let k_vertices =
    int_of_float (Float.round (sp.vertex_failure_rate *. float_of_int n))
  in
  let down_count = ref 0 in
  if k_vertices > 0 then begin
    let ranked =
      List.init n (fun v -> (hash4 sp.seed tag_vertex v 0, v))
      |> List.sort (fun (h1, v1) (h2, v2) ->
             let c = Int64.compare h1 h2 in
             if c <> 0 then c else Int.compare v1 v2)
    in
    List.iteri
      (fun i (_h, v) ->
        if i < k_vertices then begin
          vertices.(v) <- true;
          incr down_count
        end)
      ranked
  end;
  { sp; links; vertices; down_count = !down_count }

let empty g = compile (spec ()) g

let of_failures ?spec:(sp = spec ()) g ~links ~vertices =
  let n = Graph.n g in
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (u, v) ->
      if not (Graph.has_edge g u v) then
        invalid_arg
          (Printf.sprintf "Fault.of_failures: links[%d] = (%d, %d) is not an edge"
             (i + 1) u v);
      Hashtbl.replace tbl (canon u v) ())
    links;
  let varr = Array.make (max n 1) false in
  let down_count = ref 0 in
  List.iteri
    (fun i v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Fault.of_failures: vertices[%d] = %d out of range"
             (i + 1) v);
      if not varr.(v) then begin
        varr.(v) <- true;
        incr down_count
      end)
    vertices;
  { sp; links = tbl; vertices = varr; down_count = !down_count }

let is_empty p =
  Hashtbl.length p.links = 0
  && p.down_count = 0
  && p.sp.drop_prob = 0.0
  && p.sp.corrupt_prob = 0.0

let link_down p u v = Hashtbl.mem p.links (canon u v)

let vertex_down p v = v >= 0 && v < Array.length p.vertices && p.vertices.(v)

let failed_links p =
  Hashtbl.fold (fun e () acc -> e :: acc) p.links []
  |> List.sort (fun (u1, v1) (u2, v2) ->
         if u1 <> u2 then Int.compare u1 u2 else Int.compare v1 v2)

let failed_vertices p =
  let acc = ref [] in
  for v = Array.length p.vertices - 1 downto 0 do
    if p.vertices.(v) then acc := v :: !acc
  done;
  !acc

type hop = { at : int; port : int; index : int }

type event = Pass | Drop | Corrupt

let decide p h =
  if p.sp.drop_prob = 0.0 && p.sp.corrupt_prob = 0.0 then Pass
  else begin
    let r = u01 (hash4 p.sp.seed tag_hop ((h.at * 1_000_003) + h.port) h.index) in
    if r < p.sp.drop_prob then Drop
    else if r < p.sp.drop_prob +. p.sp.corrupt_prob then Corrupt
    else Pass
  end

let pp ppf p =
  Format.fprintf ppf
    "faults(seed=%d, links-down=%d, vertices-down=%d, drop=%g, corrupt=%g)"
    p.sp.seed (Hashtbl.length p.links) p.down_count p.sp.drop_prob
    p.sp.corrupt_prob
