let check_nonempty sets =
  List.iter
    (fun s -> if Array.length s = 0 then invalid_arg "Hitting_set: empty set")
    sets

let greedy ~n sets =
  check_nonempty sets;
  let sets = Array.of_list sets in
  let k = Array.length sets in
  (* occurs.(v) = indices of sets containing v. *)
  let occurs = Array.make n [] in
  Array.iteri
    (fun i s -> Array.iter (fun v -> occurs.(v) <- i :: occurs.(v)) s)
    sets;
  let unhit_count = Array.make n 0 in
  Array.iteri (fun v l -> unhit_count.(v) <- List.length l) occurs;
  let hit = Array.make k false in
  let remaining = ref k in
  let result = ref [] in
  while !remaining > 0 do
    (* Element covering the most unhit sets; ties by smaller id. *)
    let best = ref (-1) in
    for v = n - 1 downto 0 do
      if unhit_count.(v) >= 1 && (!best = -1 || unhit_count.(v) >= unhit_count.(!best))
      then best := v
    done;
    let v = !best in
    assert (v >= 0);
    result := v :: !result;
    List.iter
      (fun i ->
        if not hit.(i) then begin
          hit.(i) <- true;
          decr remaining;
          Array.iter (fun u -> unhit_count.(u) <- unhit_count.(u) - 1) sets.(i)
        end)
      occurs.(v)
  done;
  List.sort_uniq Int.compare !result

let sampled ~seed ~n sets =
  check_nonempty sets;
  let st = Random.State.make [| seed; 0x6873 |] in
  let sets_arr = Array.of_list sets in
  let k = Array.length sets_arr in
  let chosen = Hashtbl.create 16 in
  let hits v = Hashtbl.mem chosen v in
  let s_min =
    Array.fold_left (fun acc s -> min acc (Array.length s)) max_int sets_arr
  in
  (* Expected-size global sample: (n/s) * (ln k + 2) draws. *)
  let draws =
    int_of_float
      (ceil (float_of_int n /. float_of_int s_min *. (log (float_of_int (max k 2)) +. 2.0)))
  in
  for _ = 1 to max draws 1 do
    Hashtbl.replace chosen (Random.State.int st n) ()
  done;
  (* Patch any set the sample missed with one of its own members. *)
  Array.iter
    (fun s ->
      if not (Array.exists hits s) then
        Hashtbl.replace chosen s.(Random.State.int st (Array.length s)) ())
    sets_arr;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen [] |> List.sort Int.compare
