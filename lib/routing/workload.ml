open Cr_graph

(* Connected ordered pairs flattened into preallocated parallel arrays
   (pair, distance). A counting pass sizes the buffers exactly, so building
   a workload allocates the two result arrays and nothing else — the old
   implementation consed an O(n^2) list and converted it per call, which
   dominated workload construction at bench sizes. *)
let connected_pairs apsp n =
  let count = ref 0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Apsp.dist apsp u v < infinity then incr count
    done
  done;
  let total = !count in
  let pairs = Array.make (max 1 total) (0, 0) in
  let dist = Array.make (max 1 total) 0.0 in
  let m = ref 0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let d = Apsp.dist apsp u v in
        if d < infinity then begin
          pairs.(!m) <- (u, v);
          dist.(!m) <- d;
          incr m
        end
      end
    done
  done;
  (pairs, dist, total)

(* Index permutation sorted by distance ([Float.compare], never the
   polymorphic compare — distances are floats, and the polymorphic order
   both is slower and mis-handles any NaN that slips in). Ties break on
   the enumeration index, so the order is fully specified: among equal
   distances, pairs come in (u, v) lexicographic enumeration order. *)
let order_by_distance ?(descending = false) dist total =
  let order = Array.init total (fun i -> i) in
  Array.sort
    (fun i j ->
      let c =
        if descending then Float.compare dist.(j) dist.(i)
        else Float.compare dist.(i) dist.(j)
      in
      if c <> 0 then c else Int.compare i j)
    order;
  order

(* Partial Fisher-Yates: after the loop, [a.(0 .. budget-1)] is a uniform
   sample without replacement from the whole array — exact, deterministic
   per [st], and O(budget) swaps. This replaces rejection sampling into a
   hashtable, which bailed out after [50 * budget] attempts and silently
   under-delivered on small or heavily-tied ranges. *)
let partial_shuffle st a budget =
  let k = Array.length a in
  for i = 0 to budget - 1 do
    let j = i + Random.State.int st (k - i) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* APSP-free sampling for the scale tier: a full Dijkstra SPT per sampled
   source (reusing one workspace), then destinations drawn uniformly
   without replacement from the settled order. O(sources * (m + n log n))
   time and O(n) space — no n^2 distance matrix anywhere. *)
let sampled_pairs ~seed ~sources ~per_source g =
  if sources < 1 || per_source < 1 then
    invalid_arg "Workload.sampled_pairs: need sources, per_source >= 1";
  let n = Graph.n g in
  if n < 2 then []
  else begin
    let st = Random.State.make [| seed; 0x7370 |] in
    let ids = Array.init n (fun i -> i) in
    let k = min sources n in
    partial_shuffle st ids k;
    let ws = Dijkstra.workspace n in
    let acc = ref [] in
    for i = k - 1 downto 0 do
      let s = ids.(i) in
      Dijkstra.with_spt ws g s (fun t ->
          (* The source settles first, so the candidates are the rest of
             the settled prefix: exactly the vertices reachable from s. *)
          let reach = Array.length t.Dijkstra.order - 1 in
          if reach >= 1 then begin
            let cand = Array.sub t.Dijkstra.order 1 reach in
            let budget = min per_source reach in
            partial_shuffle st cand budget;
            for j = budget - 1 downto 0 do
              let v = cand.(j) in
              acc := ((s, v), t.Dijkstra.dist.(v)) :: !acc
            done
          end)
    done;
    !acc
  end

let stratified apsp ~seed ~n ~buckets ~per_bucket =
  if buckets < 1 then invalid_arg "Workload.stratified: need buckets >= 1";
  let pairs, dist, total = connected_pairs apsp n in
  let order = order_by_distance dist total in
  let st = Random.State.make [| seed; 0x776b |] in
  Array.init buckets (fun b ->
      let lo_idx = b * total / buckets in
      let hi_idx = min total ((b + 1) * total / buckets) in
      let size = hi_idx - lo_idx in
      if size <= 0 then ((0.0, 0.0), [])
      else begin
        let lo = dist.(order.(lo_idx)) and hi = dist.(order.(hi_idx - 1)) in
        let budget = min per_bucket size in
        (* Exactly [budget] pairs, sampled without replacement from the
           bucket's slice of the sorted order. *)
        let slice = Array.sub order lo_idx size in
        partial_shuffle st slice budget;
        let picked = ref [] in
        for i = budget - 1 downto 0 do
          picked := pairs.(slice.(i)) :: !picked
        done;
        ((lo, hi), !picked)
      end)

let farthest apsp ~n ~count =
  let pairs, dist, total = connected_pairs apsp n in
  let order = order_by_distance ~descending:true dist total in
  List.init (min count total) (fun i -> pairs.(order.(i)))

let within_distance apsp ~seed ~n ~lo ~hi ~count =
  let pairs, dist, total = connected_pairs apsp n in
  let eligible_count = ref 0 in
  for i = 0 to total - 1 do
    if dist.(i) >= lo && dist.(i) <= hi then incr eligible_count
  done;
  let k = !eligible_count in
  if k = 0 then []
  else begin
    let eligible = Array.make k 0 in
    let m = ref 0 in
    for i = 0 to total - 1 do
      if dist.(i) >= lo && dist.(i) <= hi then begin
        eligible.(!m) <- i;
        incr m
      end
    done;
    let st = Random.State.make [| seed; 0x7764 |] in
    let budget = min count k in
    partial_shuffle st eligible budget;
    List.init budget (fun i -> pairs.(eligible.(i)))
  end
