open Cr_graph

let all_connected_pairs apsp n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let d = Apsp.dist apsp u v in
        if d < infinity then acc := ((u, v), d) :: !acc
      end
    done
  done;
  !acc

let stratified apsp ~seed ~n ~buckets ~per_bucket =
  if buckets < 1 then invalid_arg "Workload.stratified: need buckets >= 1";
  let pairs = all_connected_pairs apsp n in
  let sorted =
    List.sort (fun (_, d1) (_, d2) -> compare d1 d2) pairs |> Array.of_list
  in
  let total = Array.length sorted in
  let st = Random.State.make [| seed; 0x776b |] in
  Array.init buckets (fun b ->
      let lo_idx = b * total / buckets in
      let hi_idx = min total ((b + 1) * total / buckets) in
      let size = hi_idx - lo_idx in
      if size <= 0 then ((0.0, 0.0), [])
      else begin
        let lo = snd sorted.(lo_idx) and hi = snd sorted.(hi_idx - 1) in
        let chosen = Hashtbl.create (2 * per_bucket) in
        let budget = min per_bucket size in
        (* Sample without replacement from the bucket's index range. *)
        let guard = ref 0 in
        while Hashtbl.length chosen < budget && !guard < 50 * budget do
          incr guard;
          Hashtbl.replace chosen (lo_idx + Random.State.int st size) ()
        done;
        let picked =
          Hashtbl.fold (fun i () acc -> fst sorted.(i) :: acc) chosen []
        in
        ((lo, hi), picked)
      end)

let farthest apsp ~n ~count =
  let pairs = all_connected_pairs apsp n in
  let sorted = List.sort (fun (_, d1) (_, d2) -> compare d2 d1) pairs in
  List.filteri (fun i _ -> i < count) sorted |> List.map fst

let within_distance apsp ~seed ~n ~lo ~hi ~count =
  let eligible =
    all_connected_pairs apsp n
    |> List.filter (fun (_, d) -> d >= lo && d <= hi)
    |> List.map fst
    |> Array.of_list
  in
  let k = Array.length eligible in
  if k = 0 then []
  else begin
    let st = Random.State.make [| seed; 0x7764 |] in
    let chosen = Hashtbl.create (2 * count) in
    let budget = min count k in
    let guard = ref 0 in
    while Hashtbl.length chosen < budget && !guard < 50 * budget do
      incr guard;
      Hashtbl.replace chosen eligible.(Random.State.int st k) ()
    done;
    Hashtbl.fold (fun p () acc -> p :: acc) chosen []
  end
