open Cr_graph

(* Each cache is a plain hashtable: the handle is consulted only from the
   orchestrating domain (the parallel sweeps inside the cached functions
   use their own per-domain workspaces), so no synchronization is needed. *)
type t = {
  g : Graph.t;
  spts : (int, Dijkstra.tree) Hashtbl.t;
  spt_trees : (int, Tree_routing.t) Hashtbl.t;
  vics : (int, Vicinity.t array) Hashtbl.t;
  cents : (int * int, Centers.t) Hashtbl.t;
  clusters : (int * int * int, Dijkstra.tree) Hashtbl.t;
  cluster_trees : (int * int * int, Tree_routing.t option) Hashtbl.t;
  bunch : (int * int, int array array) Hashtbl.t;
  (* Scratch for the cluster_tree miss path: the restricted search runs in
     this workspace and only the compact Tree_routing survives, so a sweep
     over all w never materializes (or caches) the raw five-n-array
     Dijkstra trees. Lazily allocated; single-owner like the handle. *)
  mutable cws : Dijkstra.workspace option;
  mutable spt_h : int;
  mutable spt_m : int;
  mutable tree_h : int;
  mutable tree_m : int;
  mutable vic_h : int;
  mutable vic_m : int;
  mutable cent_h : int;
  mutable cent_m : int;
  mutable clus_h : int;
  mutable clus_m : int;
}

type stats = {
  spt_hits : int;
  spt_misses : int;
  spt_tree_hits : int;
  spt_tree_misses : int;
  vicinity_hits : int;
  vicinity_misses : int;
  centers_hits : int;
  centers_misses : int;
  cluster_hits : int;
  cluster_misses : int;
}

let create g =
  {
    g;
    spts = Hashtbl.create 64;
    spt_trees = Hashtbl.create 64;
    vics = Hashtbl.create 4;
    cents = Hashtbl.create 4;
    clusters = Hashtbl.create 64;
    cluster_trees = Hashtbl.create 64;
    bunch = Hashtbl.create 4;
    cws = None;
    spt_h = 0;
    spt_m = 0;
    tree_h = 0;
    tree_m = 0;
    vic_h = 0;
    vic_m = 0;
    cent_h = 0;
    cent_m = 0;
    clus_h = 0;
    clus_m = 0;
  }

let graph s = s.g

let for_graph sub g =
  match sub with
  | None -> create g
  | Some s ->
    if s.g != g then
      invalid_arg "Substrate.for_graph: handle bound to a different graph";
    s

(* Mirror every lookup into the telemetry shard so a traced campaign shows
   substrate reuse next to the routing counters. *)
let telemetry_tick ~hit =
  if Telemetry.enabled () then begin
    let c = Telemetry.counters_shard () in
    if hit then c.Telemetry.substrate_hits <- c.Telemetry.substrate_hits + 1
    else c.Telemetry.substrate_misses <- c.Telemetry.substrate_misses + 1
  end

let memo tbl key ~hit ~miss compute =
  match Hashtbl.find_opt tbl key with
  | Some v ->
    hit ();
    telemetry_tick ~hit:true;
    v
  | None ->
    miss ();
    telemetry_tick ~hit:false;
    let v = compute () in
    Hashtbl.replace tbl key v;
    v

let spt s v =
  memo s.spts v
    ~hit:(fun () -> s.spt_h <- s.spt_h + 1)
    ~miss:(fun () -> s.spt_m <- s.spt_m + 1)
    (fun () -> Dijkstra.spt s.g v)

let spt_tree s v =
  memo s.spt_trees v
    ~hit:(fun () -> s.tree_h <- s.tree_h + 1)
    ~miss:(fun () -> s.tree_m <- s.tree_m + 1)
    (fun () -> Tree_routing.of_tree s.g (spt s v))

let vicinities ?pool ?packed s l =
  memo s.vics l
    ~hit:(fun () -> s.vic_h <- s.vic_h + 1)
    ~miss:(fun () -> s.vic_m <- s.vic_m + 1)
    (fun () -> Vicinity.compute_all ?pool ?packed s.g l)

let centers s ~seed ~target =
  memo s.cents (seed, target)
    ~hit:(fun () -> s.cent_h <- s.cent_h + 1)
    ~miss:(fun () -> s.cent_m <- s.cent_m + 1)
    (fun () -> Centers.sample ~seed s.g ~target)

let cluster s ~seed ~target w =
  memo s.clusters (seed, target, w)
    ~hit:(fun () -> s.clus_h <- s.clus_h + 1)
    ~miss:(fun () -> s.clus_m <- s.clus_m + 1)
    (fun () -> Centers.cluster s.g (centers s ~seed ~target) w)

let scratch_ws s =
  match s.cws with
  | Some ws -> ws
  | None ->
    let ws = Dijkstra.workspace (Graph.n s.g) in
    s.cws <- Some ws;
    ws

let cluster_tree s ~seed ~target w =
  memo s.cluster_trees (seed, target, w)
    ~hit:(fun () -> s.clus_h <- s.clus_h + 1)
    ~miss:(fun () -> s.clus_m <- s.clus_m + 1)
    (fun () ->
      (* Same restricted search as {!cluster}, but run in the handle's
         scratch workspace and reduced straight to the compact
         [Tree_routing.t] (O(cluster size) retained): an all-w sweep keeps
         memory proportional to the total cluster mass instead of caching
         a raw five-n-array tree per destination. [Tree_routing.of_tree]
         only reads [order]/[parent]/ports during construction and copies
         what it keeps, so the borrowed tree never escapes. *)
      let cd = centers s ~seed ~target in
      Dijkstra.with_restricted (scratch_ws s) s.g w
        ~limit:(fun v -> cd.Centers.dist_to_a.(v))
        (fun c ->
          if Array.length c.Dijkstra.order = 0 then None
          else Some (Tree_routing.of_tree s.g c)))

let bunches ?pool s ~seed ~target =
  memo s.bunch (seed, target)
    ~hit:(fun () -> s.clus_h <- s.clus_h + 1)
    ~miss:(fun () -> s.clus_m <- s.clus_m + 1)
    (fun () -> Centers.bunches ?pool s.g (centers s ~seed ~target))

(* --- delta invalidation -------------------------------------------------

   Dirty-region repair after a topology delta: every cached structure is
   kept unless the delta provably can touch it.

   - A full SPT survives iff [Delta.spt_affected] says its distances and
     parents are bit-identical on the new graph; survivors get their port
     labels re-derived ([Delta.patch_tree]) when the batch renumbered any
     ports. The derived [Tree_routing] is then re-extracted from the kept
     tree (structural, O(n)) instead of re-running Dijkstra.
   - A vicinity of [u] survives iff the delta cannot change any distance
     from [u] within its own farthest-member radius ([Delta.reaches] with
     bound [max_dist], or unbounded when the vicinity swallowed its whole
     component); a surviving vicinity whose source had ports renumbered
     gets its first-hop ports remapped in place.
   - Center samples (and everything derived: clusters, cluster trees,
     bunches) are dropped on any distance-relevant delta: the sampling
     refinement loop consumes seeded random coins conditioned on cluster
     sizes, so there is no sound reuse argument short of re-running it.

   An equal-weight-only batch (no distance and no port can change) carries
   every cache across verbatim. *)

type invalidation = {
  spt_reused : int;
  spt_dropped : int;
  spt_tree_reused : int;
  spt_tree_dropped : int;
  vicinity_reused : int;
  vicinity_dropped : int;
  centers_dropped : int;
  cluster_dropped : int;
}

let reused inv = inv.spt_reused + inv.spt_tree_reused + inv.vicinity_reused

let dropped inv =
  inv.spt_dropped + inv.spt_tree_dropped + inv.vicinity_dropped
  + inv.centers_dropped + inv.cluster_dropped

let invalidation_rows inv =
  [
    ("spt", inv.spt_reused, inv.spt_dropped);
    ("spt-tree", inv.spt_tree_reused, inv.spt_tree_dropped);
    ("vicinity", inv.vicinity_reused, inv.vicinity_dropped);
    ("centers", 0, inv.centers_dropped);
    ("cluster", 0, inv.cluster_dropped);
  ]

let invalidate s ops =
  let d = Delta.classify s.g ops in
  let g' = Delta.new_graph d in
  let s' = create g' in
  let inv =
    if Delta.is_empty d then begin
      (* Nothing observable changed: carry every cache across. *)
      Hashtbl.iter (Hashtbl.replace s'.spts) s.spts;
      Hashtbl.iter (Hashtbl.replace s'.spt_trees) s.spt_trees;
      Hashtbl.iter (Hashtbl.replace s'.vics) s.vics;
      Hashtbl.iter (Hashtbl.replace s'.cents) s.cents;
      Hashtbl.iter (Hashtbl.replace s'.clusters) s.clusters;
      Hashtbl.iter (Hashtbl.replace s'.cluster_trees) s.cluster_trees;
      Hashtbl.iter (Hashtbl.replace s'.bunch) s.bunch;
      {
        spt_reused = Hashtbl.length s.spts;
        spt_dropped = 0;
        spt_tree_reused = Hashtbl.length s.spt_trees;
        spt_tree_dropped = 0;
        vicinity_reused =
          Hashtbl.fold (fun _ a acc -> acc + Array.length a) s.vics 0;
        vicinity_dropped = 0;
        centers_dropped = 0;
        cluster_dropped = 0;
      }
    end
    else begin
      let structural = Delta.structural d in
      let spt_reused = ref 0 and spt_dropped = ref 0 in
      Hashtbl.iter
        (fun root tr ->
          if Delta.spt_affected d tr then incr spt_dropped
          else begin
            Hashtbl.replace s'.spts root
              (if structural then Delta.patch_tree g' tr else tr);
            incr spt_reused
          end)
        s.spts;
      let tree_reused = ref 0 and tree_dropped = ref 0 in
      Hashtbl.iter
        (fun root tt ->
          match Hashtbl.find_opt s'.spts root with
          | Some tr' ->
            Hashtbl.replace s'.spt_trees root
              (if structural then Tree_routing.of_tree g' tr' else tt);
            incr tree_reused
          | None -> incr tree_dropped)
        s.spt_trees;
      let vic_reused = ref 0 and vic_dropped = ref 0 in
      Hashtbl.iter
        (fun l arr ->
          let arr' =
            Array.mapi
              (fun u vic ->
                let bound =
                  if Vicinity.size vic < l then infinity
                  else Vicinity.max_dist vic
                in
                if Delta.reaches d u ~bound then begin
                  incr vic_dropped;
                  Vicinity.compute g' u l
                end
                else begin
                  incr vic_reused;
                  if structural && Delta.ports_shifted d u then
                    Vicinity.remap_ports vic (fun p ->
                        match Graph.port_to g' u (Graph.endpoint s.g u p) with
                        | Some q -> q
                        | None -> assert false)
                  else vic
                end)
              arr
          in
          Hashtbl.replace s'.vics l arr')
        s.vics;
      {
        spt_reused = !spt_reused;
        spt_dropped = !spt_dropped;
        spt_tree_reused = !tree_reused;
        spt_tree_dropped = !tree_dropped;
        vicinity_reused = !vic_reused;
        vicinity_dropped = !vic_dropped;
        centers_dropped = Hashtbl.length s.cents;
        cluster_dropped =
          Hashtbl.length s.clusters
          + Hashtbl.length s.cluster_trees
          + Hashtbl.length s.bunch;
      }
    end
  in
  if Telemetry.enabled () then begin
    let c = Telemetry.counters_shard () in
    c.Telemetry.substrate_reused_after_delta <-
      c.Telemetry.substrate_reused_after_delta + reused inv;
    c.Telemetry.substrate_dropped_after_delta <-
      c.Telemetry.substrate_dropped_after_delta + dropped inv
  end;
  (s', inv)

let stats s =
  {
    spt_hits = s.spt_h;
    spt_misses = s.spt_m;
    spt_tree_hits = s.tree_h;
    spt_tree_misses = s.tree_m;
    vicinity_hits = s.vic_h;
    vicinity_misses = s.vic_m;
    centers_hits = s.cent_h;
    centers_misses = s.cent_m;
    cluster_hits = s.clus_h;
    cluster_misses = s.clus_m;
  }

let hits st =
  st.spt_hits + st.spt_tree_hits + st.vicinity_hits + st.centers_hits
  + st.cluster_hits

let misses st =
  st.spt_misses + st.spt_tree_misses + st.vicinity_misses + st.centers_misses
  + st.cluster_misses

let stats_rows st =
  [
    ("spt", st.spt_hits, st.spt_misses);
    ("spt-tree", st.spt_tree_hits, st.spt_tree_misses);
    ("vicinity", st.vicinity_hits, st.vicinity_misses);
    ("centers", st.centers_hits, st.centers_misses);
    ("cluster", st.cluster_hits, st.cluster_misses);
  ]
