(** Telemetry: per-hop tracing, route counters and latency histograms for
    the whole routing stack.

    The layer has three faces, all behind one global enable flag:

    - {b Counters} — process-wide totals (simulator runs, hops, table
      lookups, bounces, detour entries, compiled-plane hits, ...). Each
      domain increments its own {e shard} (domain-local storage), and
      {!totals} merges the shards, so the parallel batched query engine
      needs no synchronization on the hot path and a batched campaign
      reports exactly the same totals as a serial one.
    - {b Histograms} — log-bucketed (HDR-style, powers-of-[sqrt 2])
      latency histograms around route and preprocessing calls, with
      p50/p90/p99/max readout. Also sharded per domain.
    - {b Trace events} — an optional per-hop event stream (vertex, port,
      header size, plane, bounce/drop/corrupt/retry/detour), recorded only
      while a {!with_trace} collector is installed. This is what powers
      [cr_cli trace]'s hop-by-hop narration.

    {b Zero cost when disabled.} Every instrumentation point in the stack
    is guarded by [if !Telemetry.on then ...]: with the flag off (the
    default unless [CR_TRACE] is set in the environment) a hop pays one
    boolean test and allocates nothing. The bench's [[telemetry]] section
    measures this and fails if the disabled-mode overhead on the
    throughput workload exceeds 5%.

    {b Identity.} Telemetry observes; it never steers. Routing outcomes —
    verdicts, paths, lengths, stretch — are bit-identical with the layer
    on or off ([test_telemetry.ml] pins this across the catalog, both
    planes, with and without faults). *)

val on : bool ref
(** The hot-path guard. Instrumentation points read it; everything else
    should go through {!set_enabled}. Initialized from the [CR_TRACE]
    environment variable ([unset], [""] or ["0"] = disabled). Toggle only
    from the main domain while no parallel sweep is in flight — workers
    read the flag they observed at spawn time. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

(** {1 Planes} *)

(** Which forwarding plane served a route — threaded into trace events so
    a narration can say whether a hop came from the interpreted hashtable
    tables or the compiled flat ones. *)
type plane = Interpreted | Compiled

val plane_name : plane -> string

val set_plane : plane -> unit
(** Ambient plane for subsequent trace events. Set by [Scheme.route],
    [Scheme.route_fast] and [Scheme.evaluate_batch]; a no-op when
    telemetry is disabled. *)

val current_plane : unit -> plane

(** {1 Counters} *)

(** One shard of the process-wide counters. All fields are cumulative
    event counts since the last {!reset}. *)
type counters = {
  mutable routes : int;
      (** simulator runs ([Port_model.run] invocations; a resilient
          recovery ladder counts each of its segments) *)
  mutable hops : int;  (** edges traversed *)
  mutable table_lookups : int;  (** step-function (local table) consultations *)
  mutable bounces : int;  (** dead ports refused at a sender *)
  mutable detour_entries : int;  (** resilience DFS detours entered *)
  mutable fast_plane_hits : int;  (** routes served by a compiled plane *)
  mutable delivered : int;  (** runs that ended [Delivered] *)
  mutable dropped : int;  (** messages lost to a fault [Drop] event *)
  mutable corrupted : int;  (** headers garbled by a fault [Corrupt] event *)
  mutable retries : int;  (** resilience escape-hop retransmissions *)
  mutable substrate_hits : int;
      (** preprocessing-substrate cache lookups served from memory *)
  mutable substrate_misses : int;
      (** preprocessing-substrate cache lookups that computed fresh *)
  mutable substrate_reused_after_delta : int;
      (** cached structures carried across a topology delta by
          [Substrate.invalidate] *)
  mutable substrate_dropped_after_delta : int;
      (** cached structures discarded by [Substrate.invalidate] because the
          delta touched their cone *)
}

val counters_shard : unit -> counters
(** This domain's shard (created and registered on first use). Mutate only
    under [!on]; never share across domains. *)

val null_counters : counters
(** A dummy shard for the disabled path: lets hot loops bind a shard
    unconditionally without touching domain-local storage. Never read. *)

val totals : unit -> counters
(** Fresh merged copy (field-wise sum) of every shard ever registered,
    including shards of worker domains that have since terminated. *)

val counter_rows : counters -> (string * int) list
(** Stable [(name, value)] listing, in declaration order — the CLI and
    the exporters render from this. *)

(** {1 Histograms} *)

module Histogram : sig
  (** Log-bucketed latency histogram: bucket [k] spans
      [[base * r^k, base * r^(k+1))] with [r = sqrt 2] and [base] = 1ns,
      so every bucket's relative width is under 42% and the percentile
      readout is exact to within one bucket (HDR-histogram style).
      Values are in seconds. *)

  type t

  val create : unit -> t

  val record : t -> float -> unit
  (** Non-finite and sub-[base] values clamp into the extreme buckets;
      the exact maximum is tracked separately. *)

  val count : t -> int

  val mean : t -> float
  (** Exact mean of recorded values (0 when empty). *)

  val max_value : t -> float
  (** Exact maximum (0 when empty). *)

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0, 1]: the upper bound of the first
      bucket whose cumulative count reaches [p * count] — an upper bound
      on the true percentile, tight to one bucket. [p >= 1] returns the
      exact {!max_value}. 0 when empty. *)

  val merge_into : into:t -> t -> unit
  (** Bucket-wise sum; count/sum/max combine exactly. *)

  val bucket_of : float -> int
  (** Bucket index a value lands in (exposed for the unit pins). *)

  val bucket_bounds : int -> float * float
  (** [(lo, hi)] of a bucket, in seconds. *)

  val nonempty_buckets : t -> (int * int) list
  (** [(bucket index, count)] for every occupied bucket, ascending. *)
end

(** {1 Windowed snapshots} *)

module Snapshot : sig
  (** Frozen view of the merged counters and histograms, for steady-state
      window reporting: capture one snapshot per window boundary and
      {!since} two captures to get that window's counters and latency
      histograms in isolation. The serve loop ([cr_cli serve]) prints one
      line per window from these. *)

  type t

  val capture : unit -> t
  (** Merge every shard right now and freeze the result (with a wall-clock
      stamp). Cheap enough to call once per reporting window; not meant
      for per-route use. *)

  val at : t -> float
  (** Wall-clock capture time ({!now} units). *)

  val since : earlier:t -> t -> t
  (** [since ~earlier later] is the window between the two captures:
      counters and histogram buckets are cumulative, so the delta is exact
      field-wise / bucket-wise. The one caveat: a window histogram's
      {!Histogram.max_value} is the max up to the {e later} capture (the
      exact max is not differentiable); percentiles are window-exact. *)

  val span : earlier:t -> t -> float
  (** Seconds between the two captures. *)

  val counters : t -> counters

  val histogram : t -> string -> Histogram.t option
end

val record_span : string -> float -> unit
(** [record_span name seconds] records into this domain's shard of the
    named histogram (created on first use). No-op when disabled. *)

val timed : string -> (unit -> 'a) -> 'a
(** [timed name f] runs [f] and records its wall time into the named
    histogram; when disabled it is exactly [f ()]. *)

val histograms : unit -> (string * Histogram.t) list
(** Merged named histograms across all shards, sorted by name. *)

val now : unit -> float
(** Wall clock in seconds ([Unix.gettimeofday]). *)

(** {1 Trace events} *)

type kind =
  | Hop  (** a forward: the message crossed [port] *)
  | Deliver  (** the step function delivered at [at] *)
  | Bounce  (** [port] refused locally (failed link / crashed neighbor) *)
  | Drop  (** the message was lost in flight on [port] *)
  | Corrupt  (** the header was garbled crossing [port] *)
  | Retry  (** resilience: escape-hop retransmission from [at] *)
  | Detour  (** resilience: DFS detour entered at [at] *)
  | End of string  (** run ended; payload is [Port_model.verdict_name] *)

type event = {
  plane : plane;
  kind : kind;
  at : int;  (** vertex holding the message *)
  port : int;  (** port involved, [-1] when not applicable *)
  header_words : int;
}

val tracing : unit -> bool
(** Is a {!with_trace} collector installed? Hot loops read this once per
    run and skip event construction entirely when it is off. *)

val emit : kind -> at:int -> port:int -> words:int -> unit
(** Append an event (stamped with the ambient plane) to the installed
    collector; silently dropped when none is installed. Trace collection
    is single-domain: install one only around serial routing. *)

val with_trace : (unit -> 'a) -> 'a * event list
(** [with_trace f] force-enables telemetry, collects every event emitted
    during [f ()], then restores the previous enabled state. Events are
    returned oldest first. *)

(** {1 Lifecycle and export} *)

val reset : unit -> unit
(** Zero every counter shard and drop every histogram, process-wide. The
    campaign commands call this first so a dump covers exactly one run. *)

val event_to_json : event -> string
(** One JSON object (no trailing newline) for a trace event. *)

val to_jsonl : unit -> string
(** The merged counters and histograms as JSON-lines: one
    [{"type":"counter",...}] object per counter and one
    [{"type":"histogram",...}] object per histogram (with percentiles and
    occupied buckets). *)

val to_csv : unit -> string
(** Same data as one CSV table with a leading [kind] column; counter rows
    leave the histogram columns empty. *)
