open Cr_graph

(** Versioned, checksummed binary snapshots of compiled catalog entries.

    A snapshot serializes one scheme instance built on one graph: a
    self-describing header (magic, version, host endianness, scheme id,
    build parameters, graph fingerprint), a directory of raw Bigarray
    blobs written as host memory, and an opaque caller-provided
    "residue" string (Marshal bytes for the non-Bigarray remainder).
    Loading maps the blobs back with [Unix.map_file] — zero-copy — and
    validates magic, version, endianness, bounds and checksums before
    returning; in particular the residue checksum is verified {e before}
    the caller can unmarshal it, so a damaged file yields a typed
    {!error}, never garbage routes. *)

type i32arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f32arr = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f64arr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type blob = I32 of i32arr | F32 of f32arr | F64 of f64arr

type meta = {
  scheme_id : string;
  seed : int;
  eps : float;
  n : int;
  m : int;
  fingerprint : int64;
}

type error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Endianness_mismatch
  | Truncated
  | Checksum_mismatch of string
  | Scheme_mismatch of { expected : string; found : string }
  | Params_mismatch of string
  | Graph_mismatch
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val fingerprint : Graph.t -> int64
(** FNV-1a over the logical CSR values (n, m, offsets, destinations,
    weight float bits) — independent of boxed-vs-packed storage. *)

(** {1 Encoding} *)

type sink
(** Collector for the Bigarray blobs of one entry. *)

val sink : unit -> sink

val put : sink -> blob -> int
(** Register a blob, returning its id for the decoder. Blobs are deduped
    by physical identity, so planes shared between two sub-structures
    are stored once and re-shared on load. *)

val blob_bytes : blob -> int

val save :
  path:string -> meta:meta -> residue:string -> sink -> (unit, error) result
(** Write atomically (temp file + rename). *)

(** {1 Decoding} *)

type source
(** The mapped blobs of a loaded snapshot. *)

val get_i32 : source -> int -> i32arr
(** @raise Invalid_argument on a kind mismatch — that is a codec bug, not
    a file-corruption mode (corruption is caught by the checksums). *)

val get_f32 : source -> int -> f32arr

val get_f64 : source -> int -> f64arr

type loaded = { meta : meta; source : source; residue : string }

val load : ?verify:bool -> string -> (loaded, error) result
(** Parse and validate a snapshot. [verify] (default [true]) additionally
    re-checksums every blob payload; header, directory, bounds and
    residue are always validated. *)

val check :
  loaded ->
  scheme_id:string ->
  seed:int ->
  eps:float ->
  graph:Graph.t ->
  (unit, error) result
(** Validate that a loaded snapshot is usable for [graph] under the given
    scheme and parameters (id, seed, eps, n/m, fingerprint). *)
