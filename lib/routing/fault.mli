open Cr_graph

(** Deterministic fault injection for the fixed-port simulator.

    A {!plan} is a frozen description of everything that goes wrong during
    one simulated run: a set of links that are down for the whole run, a set
    of crashed vertices, and per-hop probabilities of message loss and header
    corruption. Plans are derived purely from a seed and the graph, and the
    per-hop events come from a pure hash of [(seed, vertex, port, hop index)]
    — so replaying the same plan over the same scheme is bit-reproducible,
    which is what lets the tests pin exact degraded behavior.

    The theory this repository reproduces assumes a static, healthy network;
    this module is the lever that takes every scheme outside that assumption
    (cf. Krioukov et al., {e Compact Routing on Internet-Like Graphs}). *)

(** {1 Specifications} *)

type spec = {
  seed : int;                  (** derives the failed sets and per-hop events *)
  link_failure_rate : float;   (** fraction of edges down for the whole run *)
  vertex_failure_rate : float; (** fraction of vertices crashed *)
  drop_prob : float;           (** per traversed hop, chance the message is lost *)
  corrupt_prob : float;        (** per traversed hop, chance the header is garbled *)
}

val spec :
  ?seed:int ->
  ?link_failure_rate:float ->
  ?vertex_failure_rate:float ->
  ?drop_prob:float ->
  ?corrupt_prob:float ->
  unit ->
  spec
(** All rates default to [0.0] (and [seed] to [0]): [spec ()] is the
    no-fault specification.
    @raise Invalid_argument if a rate is outside [[0, 1]]. *)

(** {1 Plans} *)

type plan

val compile : spec -> Graph.t -> plan
(** [compile s g] freezes the fault plan for [g]: the
    [round (link_failure_rate * m)] edges and
    [round (vertex_failure_rate * n)] vertices with the smallest seed-derived
    hash are marked down. Selection depends only on [s.seed] and the
    endpoints, never on iteration order, so the same (seed, graph) pair
    always fails the same elements. *)

val of_failures :
  ?spec:spec -> Graph.t -> links:(int * int) list -> vertices:int list -> plan
(** [of_failures g ~links ~vertices] builds a plan that fails exactly the
    listed edges and vertices — the hand-built-plan entry point the unit
    tests use. Probabilistic rates are taken from [spec] (default: none).
    @raise Invalid_argument if a listed link is not an edge of [g] or a
    vertex is out of range; the message names the offending entry by its
    1-based position in the list (["links[3] = (0, 9) is not an edge"]),
    so a bad element in a long generated failure list is findable. *)

val empty : Graph.t -> plan
(** A compiled plan with no faults at all ([compile (spec ()) g]). *)

val is_empty : plan -> bool
(** No failed links, no crashed vertices, zero drop and corruption
    probability: routing under this plan must be bit-identical to routing
    with no plan. *)

(** {1 Static queries} *)

val link_down : plan -> int -> int -> bool
(** [link_down p u v] — is the undirected edge [(u, v)] failed? *)

val vertex_down : plan -> int -> bool

val failed_links : plan -> (int * int) list
(** Failed edges, each once with [u < v], sorted. *)

val failed_vertices : plan -> int list

(** {1 Per-hop events} *)

type hop = {
  at : int;     (** vertex transmitting the message *)
  port : int;   (** port it transmits through *)
  index : int;  (** hops already traversed in this run *)
}

type event =
  | Pass     (** the hop goes through unharmed *)
  | Drop     (** the message is lost in flight *)
  | Corrupt  (** the message arrives with a garbled header *)

val decide : plan -> hop -> event
(** [decide p h] is a pure function of the plan's seed and [h]: the same
    plan always makes the same call on the same hop, so a faulty run can be
    replayed exactly. Drop is tested before corruption. *)

val pp : Format.formatter -> plan -> unit
(** One-line summary: counts of failed links/vertices and the hop rates. *)
