open Cr_graph

type 'h decision =
  | Deliver
  | Forward of int * 'h

type outcome = {
  delivered : bool;
  final : int;
  path : int list;
  length : float;
  hops : int;
  header_words_peak : int;
}

type hop_record = {
  at : int;
  port : int;
  header_words : int;
}

let run g ~src ~header ~step ~header_words ?max_hops ?(on_hop = fun _ -> ()) () =
  let max_hops =
    match max_hops with Some h -> h | None -> (4 * Graph.n g) + 16
  in
  let rec go at hdr rev_path length hops peak =
    let words = header_words hdr in
    let peak = max peak words in
    if hops > max_hops then
      {
        delivered = false;
        final = at;
        path = List.rev rev_path;
        length;
        hops;
        header_words_peak = peak;
      }
    else
      match step ~at hdr with
      | Deliver ->
        on_hop { at; port = -1; header_words = words };
        {
          delivered = true;
          final = at;
          path = List.rev rev_path;
          length;
          hops;
          header_words_peak = peak;
        }
      | Forward (port, hdr') ->
        on_hop { at; port; header_words = words };
        let v = Graph.endpoint g at port in
        let w = Graph.port_weight g at port in
        go v hdr' (v :: rev_path) (length +. w) (hops + 1) peak
  in
  go src header [ src ] 0.0 0 0
