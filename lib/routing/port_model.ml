open Cr_graph

type 'h decision =
  | Deliver
  | Forward of int * 'h

type verdict =
  | Delivered
  | Dropped_at of int
  | Dead_end_at of int
  | Link_down_at of int * int
  | Hop_budget_exhausted
  | Loop_detected of int
  | Invalid_port of int * int

type outcome = {
  verdict : verdict;
  final : int;
  path : int list;
  length : float;
  hops : int;
  header_words_peak : int;
}

let delivered o = o.verdict = Delivered

let delivered_to o dst = o.verdict = Delivered && o.final = dst

let verdict_name = function
  | Delivered -> "delivered"
  | Dropped_at _ -> "dropped"
  | Dead_end_at _ -> "dead-end"
  | Link_down_at _ -> "link-down"
  | Hop_budget_exhausted -> "hop-budget-exhausted"
  | Loop_detected _ -> "loop-detected"
  | Invalid_port _ -> "invalid-port"

let pp_verdict ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Dropped_at v -> Format.fprintf ppf "dropped after vertex %d" v
  | Dead_end_at v -> Format.fprintf ppf "dead end at vertex %d" v
  | Link_down_at (v, p) -> Format.fprintf ppf "link down at vertex %d port %d" v p
  | Hop_budget_exhausted -> Format.pp_print_string ppf "hop budget exhausted"
  | Loop_detected v -> Format.fprintf ppf "loop detected at vertex %d" v
  | Invalid_port (v, p) -> Format.fprintf ppf "invalid port %d at vertex %d" p v

type hop_record = {
  at : int;
  port : int;
  header_words : int;
}

let run g ~src ~header ~step ~header_words ?max_hops ?(on_hop = fun _ -> ())
    ?faults ?on_bounce ?corrupt ?(detect_loops = true) () =
  if src < 0 || src >= Graph.n g then
    invalid_arg (Printf.sprintf "Port_model.run: source %d out of range" src);
  let max_hops =
    match max_hops with Some h -> h | None -> (4 * Graph.n g) + 16
  in
  let link_down u v =
    match faults with Some p -> Fault.link_down p u v | None -> false
  in
  let vertex_down v =
    match faults with Some p -> Fault.vertex_down p v | None -> false
  in
  let hop_event at port index =
    match faults with
    | Some p -> Fault.decide p { Fault.at; port; index }
    | None -> Fault.Pass
  in
  (* Loop signatures: bucket on (vertex, words, structural hash) and confirm
     with structural equality, so a repeat is only declared when the exact
     (vertex, header) state recurs — a deterministic step function is then
     provably cycling. Headers containing functional values never compare
     equal (polymorphic compare raises) and simply forgo loop protection. *)
  let seen = Hashtbl.create (if detect_loops then 64 else 1) in
  let looped at words hdr =
    detect_loops
    &&
    let key = (at, words, Hashtbl.hash hdr) in
    let prior =
      match Hashtbl.find_opt seen key with Some l -> l | None -> []
    in
    let same h = try compare h hdr = 0 with Invalid_argument _ -> false in
    if List.exists same prior then true
    else begin
      Hashtbl.replace seen key (hdr :: prior);
      false
    end
  in
  let finish verdict at rev_path length hops peak =
    {
      verdict;
      final = at;
      path = List.rev rev_path;
      length;
      hops;
      header_words_peak = peak;
    }
  in
  let rec go at hdr rev_path length hops peak =
    let words = header_words hdr in
    let peak = max peak words in
    if looped at words hdr then
      finish (Loop_detected at) at rev_path length hops peak
    else begin
      let dec =
        try Ok (step ~at hdr)
        with
        | (Out_of_memory | Stack_overflow) as e -> raise e
        | _ -> Error ()
      in
      match dec with
      | Error () ->
        (* The local table cannot produce a next hop (it raised): in a real
           router the message is discarded here. *)
        finish (Dead_end_at at) at rev_path length hops peak
      | Ok Deliver ->
        on_hop { at; port = -1; header_words = words };
        finish Delivered at rev_path length hops peak
      | Ok (Forward (port, hdr')) ->
        forward at ~dead:[] port hdr hdr' rev_path length hops peak words
    end
  and forward at ~dead port hdr hdr' rev_path length hops peak words =
    if port < 0 || port >= Graph.degree g at then
      finish (Invalid_port (at, port)) at rev_path length hops peak
    else begin
      let v = Graph.endpoint g at port in
      if link_down at v || vertex_down v then begin
        (* The failed link (or crashed neighbor) is observable locally: the
           message stays at the sender and the bounce hook may pick another
           port, with the dead ones masked. *)
        let dead = port :: dead in
        let give_up () =
          let verdict =
            if vertex_down v && not (link_down at v) then Dead_end_at v
            else Link_down_at (at, port)
          in
          finish verdict at rev_path length hops peak
        in
        if List.length dead >= Graph.degree g at then give_up ()
        else
          match on_bounce with
          | None -> give_up ()
          | Some f -> (
            let bounce =
              try f ~at ~dead hdr
              with
              | (Out_of_memory | Stack_overflow) as e -> raise e
              | _ -> None
            in
            match bounce with
            | None -> give_up ()
            | Some Deliver ->
              on_hop { at; port = -1; header_words = words };
              finish Delivered at rev_path length hops peak
            | Some (Forward (p', h')) ->
              forward at ~dead p' hdr h' rev_path length hops peak words)
      end
      else if hops >= max_hops then
        (* Refuse the hop *before* traversing: the budget bounds the number
           of edges crossed, not the number of abort checks. *)
        finish Hop_budget_exhausted at rev_path length hops peak
      else begin
        match hop_event at port hops with
        | Fault.Drop ->
          on_hop { at; port; header_words = words };
          finish (Dropped_at at) at rev_path length hops peak
        | Fault.Corrupt ->
          on_hop { at; port; header_words = words };
          (match corrupt with
          | None ->
            (* We cannot forge a header of an arbitrary type; the garbled
               message is undeliverable and counts as lost in flight. *)
            finish (Dropped_at at) at rev_path length hops peak
          | Some garble ->
            let w = Graph.port_weight g at port in
            let hdr'' =
              try garble hdr'
              with
              | (Out_of_memory | Stack_overflow) as e -> raise e
              | _ -> hdr'
            in
            go v hdr'' (v :: rev_path) (length +. w) (hops + 1) peak)
        | Fault.Pass ->
          on_hop { at; port; header_words = words };
          let w = Graph.port_weight g at port in
          go v hdr' (v :: rev_path) (length +. w) (hops + 1) peak
      end
    end
  in
  if vertex_down src then
    finish (Dead_end_at src) src [ src ] 0.0 0 (max 0 (header_words header))
  else go src header [ src ] 0.0 0 0
