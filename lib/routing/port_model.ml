open Cr_graph

type 'h decision =
  | Deliver
  | Forward of int * 'h

type verdict =
  | Delivered
  | Dropped_at of int
  | Dead_end_at of int
  | Link_down_at of int * int
  | Hop_budget_exhausted
  | Loop_detected of int
  | Invalid_port of int * int

type outcome = {
  verdict : verdict;
  final : int;
  path : int list;
  length : float;
  hops : int;
  header_words_peak : int;
}

let delivered o = o.verdict = Delivered

let delivered_to o dst = o.verdict = Delivered && o.final = dst

let verdict_name = function
  | Delivered -> "delivered"
  | Dropped_at _ -> "dropped"
  | Dead_end_at _ -> "dead-end"
  | Link_down_at _ -> "link-down"
  | Hop_budget_exhausted -> "hop-budget-exhausted"
  | Loop_detected _ -> "loop-detected"
  | Invalid_port _ -> "invalid-port"

let verdict_class = function
  | Delivered -> 0
  | Dropped_at _ -> 1
  | Dead_end_at _ -> 2
  | Link_down_at _ -> 3
  | Hop_budget_exhausted -> 4
  | Loop_detected _ -> 5
  | Invalid_port _ -> 6

let verdict_classes =
  [| "delivered"; "dropped"; "dead-end"; "link-down"; "hop-budget-exhausted";
     "loop-detected"; "invalid-port" |]

let pp_verdict ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Dropped_at v -> Format.fprintf ppf "dropped after vertex %d" v
  | Dead_end_at v -> Format.fprintf ppf "dead end at vertex %d" v
  | Link_down_at (v, p) -> Format.fprintf ppf "link down at vertex %d port %d" v p
  | Hop_budget_exhausted -> Format.pp_print_string ppf "hop budget exhausted"
  | Loop_detected v -> Format.fprintf ppf "loop detected at vertex %d" v
  | Invalid_port (v, p) -> Format.fprintf ppf "invalid port %d at vertex %d" p v

type hop_record = {
  at : int;
  port : int;
  header_words : int;
}

let run g ~src ~header ~step ~header_words ?max_hops ?(on_hop = fun _ -> ())
    ?faults ?on_bounce ?corrupt ?(record_path = true) ?(detect_loops = true)
    () =
  if src < 0 || src >= Graph.n g then
    invalid_arg (Printf.sprintf "Port_model.run: source %d out of range" src);
  (* Telemetry is resolved once per run: a single flag read, then every
     per-hop instrumentation point is a test of the local [telon] (and the
     shard is this domain's own, so parallel sweeps never contend). With
     telemetry disabled the whole layer costs one boolean test per
     instrumentation point and allocates nothing. *)
  let telon = !Telemetry.on in
  let tc = if telon then Telemetry.counters_shard () else Telemetry.null_counters in
  let ttrace = telon && Telemetry.tracing () in
  if telon then tc.Telemetry.routes <- tc.Telemetry.routes + 1;
  let max_hops =
    match max_hops with Some h -> h | None -> (4 * Graph.n g) + 16
  in
  let link_down u v =
    match faults with Some p -> Fault.link_down p u v | None -> false
  in
  let vertex_down v =
    match faults with Some p -> Fault.vertex_down p v | None -> false
  in
  let hop_event at port index =
    match faults with
    | Some p -> Fault.decide p { Fault.at; port; index }
    | None -> Fault.Pass
  in
  (* Loop signatures: bucket on (vertex, words, structural hash) and confirm
     with structural equality, so a repeat is only declared when the exact
     (vertex, header) state recurs — a deterministic step function is then
     provably cycling. Headers containing functional values never compare
     equal (polymorphic compare raises) and simply forgo loop protection. *)
  let seen = Hashtbl.create (if detect_loops then 64 else 1) in
  (* Most schemes forward the same physical header for many consecutive
     hops (Via-chains, tree descents); re-hashing it each hop is the loop
     detector's dominant cost. Physical equality implies structural
     equality, so the cached hash is exact whenever it applies. *)
  let cached_hdr = ref header and cached_hash = ref 0 in
  let cache_full = ref false in
  let header_hash hdr =
    if !cache_full && hdr == !cached_hdr then !cached_hash
    else begin
      let h = Hashtbl.hash hdr in
      cached_hdr := hdr;
      cached_hash := h;
      cache_full := true;
      h
    end
  in
  let looped at words hdr =
    detect_loops
    &&
    let key = (at, words, header_hash hdr) in
    let prior =
      match Hashtbl.find_opt seen key with Some l -> l | None -> []
    in
    let same h = try compare h hdr = 0 with Invalid_argument _ -> false in
    if List.exists same prior then true
    else begin
      Hashtbl.replace seen key (hdr :: prior);
      false
    end
  in
  (* Iterative simulation state; [rev_path] stays empty when the caller
     opted out of path recording, everything else is identical. *)
  let at = ref src in
  let hdr = ref header in
  let rev_path = ref (if record_path then [ src ] else []) in
  let length = ref 0.0 in
  let hops = ref 0 in
  let peak = ref 0 in
  let verdict = ref None in
  let stop v = verdict := Some v in
  let traverse v h' w =
    at := v;
    hdr := h';
    if record_path then rev_path := v :: !rev_path;
    length := !length +. w;
    if telon then tc.Telemetry.hops <- tc.Telemetry.hops + 1;
    incr hops
  in
  if vertex_down src then begin
    peak := max 0 (header_words header);
    stop (Dead_end_at src)
  end;
  while !verdict = None do
    let words = header_words !hdr in
    if words > !peak then peak := words;
    if looped !at words !hdr then stop (Loop_detected !at)
    else begin
      if telon then
        tc.Telemetry.table_lookups <- tc.Telemetry.table_lookups + 1;
      let dec =
        try Ok (step ~at:!at !hdr)
        with
        | (Out_of_memory | Stack_overflow) as e -> raise e
        | _ -> Error ()
      in
      match dec with
      | Error () ->
        (* The local table cannot produce a next hop (it raised): in a real
           router the message is discarded here. *)
        stop (Dead_end_at !at)
      | Ok Deliver ->
        on_hop { at = !at; port = -1; header_words = words };
        if telon then tc.Telemetry.delivered <- tc.Telemetry.delivered + 1;
        if ttrace then Telemetry.emit Deliver ~at:!at ~port:(-1) ~words;
        stop Delivered
      | Ok (Forward (port0, hdr0)) ->
        (* The bounce chain: dead ports accumulate while the message stays
           at [!at]; each alternative re-enters the same checks. *)
        let port = ref port0 in
        let hdr' = ref hdr0 in
        let dead = ref [] in
        let deadn = ref 0 in
        let bouncing = ref true in
        while !bouncing do
          bouncing := false;
          let p = !port in
          if p < 0 || p >= Graph.degree g !at then stop (Invalid_port (!at, p))
          else begin
            let v = Graph.endpoint g !at p in
            if link_down !at v || vertex_down v then begin
              (* The failed link (or crashed neighbor) is observable
                 locally: the message stays at the sender and the bounce
                 hook may pick another port, with the dead ones masked. *)
              dead := p :: !dead;
              incr deadn;
              if telon then tc.Telemetry.bounces <- tc.Telemetry.bounces + 1;
              if ttrace then Telemetry.emit Bounce ~at:!at ~port:p ~words;
              let give_up () =
                let verdict =
                  if vertex_down v && not (link_down !at v) then Dead_end_at v
                  else Link_down_at (!at, p)
                in
                stop verdict
              in
              if !deadn >= Graph.degree g !at then give_up ()
              else
                match on_bounce with
                | None -> give_up ()
                | Some f -> (
                  let bounce =
                    try f ~at:!at ~dead:!dead !hdr
                    with
                    | (Out_of_memory | Stack_overflow) as e -> raise e
                    | _ -> None
                  in
                  match bounce with
                  | None -> give_up ()
                  | Some Deliver ->
                    on_hop { at = !at; port = -1; header_words = words };
                    if telon then
                      tc.Telemetry.delivered <- tc.Telemetry.delivered + 1;
                    if ttrace then
                      Telemetry.emit Deliver ~at:!at ~port:(-1) ~words;
                    stop Delivered
                  | Some (Forward (p', h')) ->
                    port := p';
                    hdr' := h';
                    bouncing := true)
            end
            else if !hops >= max_hops then
              (* Refuse the hop *before* traversing: the budget bounds the
                 number of edges crossed, not the number of abort checks. *)
              stop Hop_budget_exhausted
            else begin
              match hop_event !at p !hops with
              | Fault.Drop ->
                on_hop { at = !at; port = p; header_words = words };
                if telon then tc.Telemetry.dropped <- tc.Telemetry.dropped + 1;
                if ttrace then Telemetry.emit Drop ~at:!at ~port:p ~words;
                stop (Dropped_at !at)
              | Fault.Corrupt ->
                on_hop { at = !at; port = p; header_words = words };
                if telon then
                  tc.Telemetry.corrupted <- tc.Telemetry.corrupted + 1;
                if ttrace then Telemetry.emit Corrupt ~at:!at ~port:p ~words;
                (match corrupt with
                | None ->
                  (* We cannot forge a header of an arbitrary type; the
                     garbled message is undeliverable and counts as lost in
                     flight. *)
                  stop (Dropped_at !at)
                | Some garble ->
                  let w = Graph.port_weight g !at p in
                  let hdr'' =
                    try garble !hdr'
                    with
                    | (Out_of_memory | Stack_overflow) as e -> raise e
                    | _ -> !hdr'
                  in
                  traverse v hdr'' w)
              | Fault.Pass ->
                on_hop { at = !at; port = p; header_words = words };
                if ttrace then Telemetry.emit Hop ~at:!at ~port:p ~words;
                traverse v !hdr' (Graph.port_weight g !at p)
            end
          end
        done
    end
  done;
  let final_verdict =
    match !verdict with Some v -> v | None -> assert false
  in
  if ttrace then
    Telemetry.emit
      (End (verdict_name final_verdict))
      ~at:!at ~port:(-1)
      ~words:(header_words !hdr);
  {
    verdict = final_verdict;
    final = !at;
    path = List.rev !rev_path;
    length = !length;
    hops = !hops;
    header_words_peak = !peak;
  }
