open Cr_graph

(** Open-loop traffic engine: the workload side of the long-running query
    server ([cr_cli serve]).

    A {!t} describes a synthetic query population the way measurement
    studies describe real ones (cf. Krioukov et al., {e Compact Routing on
    Internet-Like Graphs}): source and destination popularity follow a
    Zipf law with configurable exponent ([zipf = 0] is uniform), and
    queries arrive {e open-loop} — on a schedule fixed in advance at a
    target rate, regardless of how fast the server drains them, so an
    overloaded server accumulates lag instead of silently slowing the
    offered load.

    {b Determinism.} Everything is a pure function of the seed: vertex
    popularity ranks come from two seed-derived permutations (source and
    destination independently, so hot sources are not hot destinations),
    and the k-th query's endpoints and arrival time are derived by
    SplitMix-style hashing of [(seed, k)] — no sequential RNG state. The
    same seed always produces the same schedule, and query [k] can be
    recomputed without generating the first [k - 1]. *)

type t

val create : ?zipf:float -> ?rate:float -> seed:int -> n:int -> unit -> t
(** [create ~seed ~n ()] is a traffic spec over vertices [[0, n)].
    [zipf] (default [1.0]) is the popularity exponent: rank [r] is drawn
    with probability proportional to [(r + 1) ** -zipf]. [rate] (default
    [infinity]) is the target arrival rate in queries per second;
    [infinity] means "no schedule" — every arrival is due immediately.
    @raise Invalid_argument if [n < 2], [zipf < 0] or [rate <= 0]. *)

val n : t -> int

val seed : t -> int

val zipf : t -> float

val rate : t -> float

val pair : t -> int -> int * int
(** [pair t k] is the k-th query's (source, destination): both endpoints
    Zipf-distributed over their own popularity permutation, source <>
    destination, and a pure function of [(seed t, k)]. *)

val arrival : t -> int -> float
(** [arrival t k] — seconds after stream start at which query [k] is due.
    Nondecreasing in [k]; query [k] lands in [[k/rate, (k+1)/rate)] with a
    seed-derived jitter, so the long-run offered rate is exactly [rate].
    [0.0] for every [k] when [rate] is [infinity]. *)

val pairs : t -> count:int -> (int * int) list
(** The first [count] query pairs, in arrival order. *)

val rank_of_source : t -> int -> int
(** [rank_of_source t v] is vertex [v]'s popularity rank as a {e source}
    (0 = hottest) — the inverse of the source permutation, used by the
    rank-frequency tests. *)

(** {1 Fault churn} *)

type churn_event = { at_query : int; plan : Fault.plan option }
(** From query index [at_query] (inclusive) on, route under [plan]
    ([None] = healthy network) — until the next event. *)

val churn_cycle :
  Graph.t ->
  seed:int ->
  every:int ->
  budget:int ->
  link_rate:float ->
  vertex_rate:float ->
  churn_event list
(** A fail/heal cycle for a [budget]-query run: at queries [every],
    [2 * every], ... the network alternates between a freshly compiled
    fault plan (rotating seeds, so each outage fails different elements)
    and full health. Empty when [every <= 0] or [every >= budget]. *)

(** {1 Topology churn} *)

type topo_event = {
  at_query : int;
  ops_of : Graph.t -> Graph.delta_op list;
      (** the delta batch, generated against whatever graph is current
          when the event fires — with several events in flight each batch
          must be valid against the previous repair's output, not the
          original graph *)
}
(** At query index [at_query] the topology itself changes: the serve loop
    asks the repairer for a repaired world and hot-swaps it in. *)

val topo_cycle : seed:int -> every:int -> budget:int -> ops:int -> topo_event list
(** Topology churn for a [budget]-query run: at queries [every],
    [2 * every], ... apply a {!Delta.random} batch of [ops] edge changes
    (rotating seeds). Empty when [every <= 0], [ops <= 0] or
    [every >= budget]. *)

type swap = {
  sw_graph : Graph.t;
  sw_instances : Scheme.instance list;
      (** repaired instances, same order/length as the served ones *)
  sw_apsp : Apsp.t;  (** oracle for the new graph *)
  sw_wall : float;  (** seconds the repair proper took (excl. the oracle) *)
  sw_full_rebuild : bool;  (** whether the repair fell back to full rebuild *)
  sw_reused : int;  (** substrate structures carried across the delta *)
  sw_dropped : int;
}
(** What a repairer returns. The serve loop installs all fields between
    two chunks — no query ever observes a half-swapped world. *)

(** {1 The serve loop} *)

type segment = {
  plan : Fault.plan option;  (** fault plan active during the segment *)
  pairs : (int * int) list;  (** this instance's queries, arrival order *)
  eval : Scheme.eval;
      (** bit-identical to [Scheme.evaluate_batch ?faults:plan ~fast:true]
          over [pairs] — the serve loop routes through the same batch
          engine in chunks and concatenates (see {!Scheme.concat_evals}),
          so nothing can diverge; [test_traffic.ml] pins it anyway. *)
}

type served = {
  instance : Scheme.instance;
  segments : segment list;  (** chronological; a new one per churn event *)
}

type epoch = {
  index : int;  (** 0 for the pre-churn world *)
  started_at : int;  (** first query index served in this epoch *)
  ops : Graph.delta_op list;  (** the delta that opened it; [[]] for epoch 0 *)
  repair_wall : float;  (** the repairer's [sw_wall]; [0.] for epoch 0 *)
  blackout : float;
      (** wall seconds the serve loop was blocked inside the repairer
          (includes oracle recomputation and other measurement overhead) *)
  full_rebuild : bool;
  reused : int;  (** substrate structures carried across the delta *)
  dropped : int;
  stale_queries : int;
      (** queries answered on the {e pre-swap} tables while this epoch's
          repair ran — the staleness window *)
  stale_eval : Scheme.eval option;
      (** their aggregate evaluation: old instances wrapped in
          {!Resilient}, the delta's removed links failed, measured against
          the old oracle — the delivery-during-repair figure *)
  graph : Graph.t;  (** this epoch's graph *)
  apsp : Apsp.t;  (** and its oracle, for post-hoc identity checks *)
  served : served list;  (** per-instance segments of this epoch *)
}
(** One interval of topological stability. Without topology churn the run
    is a single epoch 0. *)

type report = {
  served : served list;
      (** per-epoch [served] lists concatenated chronologically — without
          topology churn, exactly one entry per instance, in the
          [instances] argument's order *)
  epochs : epoch list;  (** chronological; singleton without topo churn *)
  routed : int;  (** queries dispatched (= budget) *)
  wall : float;  (** wall seconds for the whole loop, pacing included *)
  rps : float;  (** sustained routed queries per second, [routed / wall] *)
  verdicts : (string * int) list;
      (** per-verdict route counts over every routed query
          ({!Port_model.verdict_classes} order; a query delivered at the
          wrong vertex counts as ["delivered"] here but fails its eval) *)
  max_lag : float;
      (** worst observed lateness (seconds) behind the arrival schedule —
          [0.0] when unpaced or never behind. An open-loop server that
          cannot keep up shows it here, not in a reduced [rps]. *)
}

val serve :
  ?pool:Pool.t ->
  ?churn:churn_event list ->
  ?topo:topo_event list ->
  ?repairer:(Graph.t -> Graph.delta_op list -> swap) ->
  ?chunk:int ->
  ?pace:bool ->
  ?on_window:(routed:int -> elapsed:float -> unit) ->
  t ->
  budget:int ->
  instances:Scheme.instance list ->
  apsp:Apsp.t ->
  report
(** [serve t ~budget ~instances ~apsp] drives [budget] queries from the
    schedule through the instances (all over the same graph; [apsp] is
    that graph's oracle), dispatching query [k] to instance
    [k mod length instances] — a round-robin multi-plane server. Queries
    are drained in windows of at most [chunk] (default 256) per instance
    through {!Scheme.evaluate_batch} on [pool], so routing fans out over
    the domain pool while results stay bit-identical to a serial run.

    With [pace] (default [true]) and a finite rate, the loop sleeps until
    a window's first query is due — open-loop: it never sleeps to let a
    slow server catch up, and {!report}[.max_lag] records how far behind
    the schedule it fell. [on_window] is called after every window with
    cumulative progress (the CLI hangs its steady-state telemetry
    snapshots off it).

    [churn] events (sorted internally) swap the active fault plan at query
    boundaries; each swap closes the affected instances' current
    {!segment}. Resilient instances compose transparently — wrap entries
    with {!Resilient} (catalog ["+res"] ids) and the recovery ladder runs
    under whatever plan the churn has made active.

    [topo] events change the graph itself. When one fires the loop closes
    the current {!epoch}, calls [repairer graph ops] (mandatory whenever
    [topo] is non-empty), and answers the queries that piled up while it
    ran — the staleness window — on the old instances wrapped in
    {!Resilient}, under a fault plan failing the delta's removed links,
    against the old oracle: delivery never stops during a repair. Then it
    installs the repaired (graph, instances, apsp) atomically between two
    chunks and opens the next epoch. Unpaced runs use one round of chunks
    as the staleness window; paced runs use the actual wall-clock backlog
    (at least one query per instance). Fault-churn boundaries falling
    inside a repair window are applied as soon as it closes; fault plans
    compiled against an older epoch's graph stay legal — links they name
    that no longer exist are simply never traversed.

    @raise Invalid_argument on an empty instance list, [budget < 0],
    [chunk < 1], topology churn without a [repairer], or a repairer
    returning a different number of instances. *)
