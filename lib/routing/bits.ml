type writer = {
  mutable buf : Bytes.t;
  mutable len_bits : int;
}

let writer () = { buf = Bytes.make 16 '\000'; len_bits = 0 }

let ensure w extra_bits =
  let needed = (w.len_bits + extra_bits + 7) / 8 in
  if needed > Bytes.length w.buf then begin
    let bigger = Bytes.make (max needed (2 * Bytes.length w.buf)) '\000' in
    Bytes.blit w.buf 0 bigger 0 (Bytes.length w.buf);
    w.buf <- bigger
  end

let push_bit w b =
  ensure w 1;
  if b then begin
    let byte = w.len_bits / 8 and off = w.len_bits mod 8 in
    Bytes.set w.buf byte
      (Char.chr (Char.code (Bytes.get w.buf byte) lor (0x80 lsr off)))
  end;
  w.len_bits <- w.len_bits + 1

let push w ~bits v =
  if bits < 1 || bits > 62 then invalid_arg "Bits.push: bad width";
  if v < 0 || (bits < 62 && v lsr bits <> 0) then
    invalid_arg "Bits.push: value out of range";
  for i = bits - 1 downto 0 do
    push_bit w ((v lsr i) land 1 = 1)
  done

let push_gamma w v =
  if v < 0 then invalid_arg "Bits.push_gamma: negative";
  let x = v + 1 in
  let nbits =
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
    go x 0
  in
  (* nbits - 1 zeros, then x in nbits bits (leading 1 included). *)
  for _ = 1 to nbits - 1 do
    push_bit w false
  done;
  push w ~bits:nbits x

let length w = w.len_bits

let contents w = Bytes.sub w.buf 0 ((w.len_bits + 7) / 8)

type reader = {
  data : Bytes.t;
  mutable pos : int;
}

let reader data = { data; pos = 0 }

let pull_bit r =
  let byte = r.pos / 8 and off = r.pos mod 8 in
  if byte >= Bytes.length r.data then invalid_arg "Bits.pull: past end";
  r.pos <- r.pos + 1;
  Char.code (Bytes.get r.data byte) land (0x80 lsr off) <> 0

let pull r ~bits =
  if bits < 1 || bits > 62 then invalid_arg "Bits.pull: bad width";
  let v = ref 0 in
  for _ = 1 to bits do
    v := (!v lsl 1) lor (if pull_bit r then 1 else 0)
  done;
  !v

let pull_gamma r =
  let zeros = ref 0 in
  while not (pull_bit r) do
    incr zeros
  done;
  (* We consumed the leading 1; read the remaining [zeros] bits of x. *)
  let rest = if !zeros = 0 then 0 else pull r ~bits:!zeros in
  ((1 lsl !zeros) lor rest) - 1

let bits_for k =
  if k <= 1 then 1
  else begin
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
    go (k - 1) 0
  end
