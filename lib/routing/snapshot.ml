open Cr_graph

(* Versioned binary snapshots of compiled catalog entries.

   A snapshot file carries a small self-describing header (magic, format
   version, host endianness, scheme id and build parameters, graph
   fingerprint), a directory of raw Bigarray blobs, the blob payloads
   themselves (8-aligned, written as raw host memory so they can be
   mapped straight back), and an opaque "residue" string — the caller's
   Marshal bytes for everything that is not a Bigarray. Every region is
   CRC-32 checksummed, and the residue checksum is validated here BEFORE
   the caller ever feeds those bytes to [Marshal.from_string]: a
   corrupted file must fail with a typed error, never with a segfault or
   a garbage route.

   Loading maps each blob with [Unix.map_file] — zero-copy: the plane
   arrays alias the page cache and no element is touched until routing
   reads it (blob CRC verification, on by default, does touch them). *)

type i32arr = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f32arr = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f64arr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type blob = I32 of i32arr | F32 of f32arr | F64 of f64arr

type meta = {
  scheme_id : string;
  seed : int;
  eps : float;
  n : int;
  m : int;
  fingerprint : int64;
}

type error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Endianness_mismatch
  | Truncated
  | Checksum_mismatch of string
  | Scheme_mismatch of { expected : string; found : string }
  | Params_mismatch of string
  | Graph_mismatch
  | Malformed of string

let pp_error ppf = function
  | Io m -> Format.fprintf ppf "i/o error: %s" m
  | Bad_magic -> Format.fprintf ppf "not a snapshot file (bad magic)"
  | Unsupported_version v -> Format.fprintf ppf "unsupported snapshot version %d" v
  | Endianness_mismatch ->
    Format.fprintf ppf "snapshot written on a host with different endianness"
  | Truncated -> Format.fprintf ppf "truncated snapshot file"
  | Checksum_mismatch what -> Format.fprintf ppf "checksum mismatch in %s" what
  | Scheme_mismatch { expected; found } ->
    Format.fprintf ppf "snapshot is for scheme %s, expected %s" found expected
  | Params_mismatch what -> Format.fprintf ppf "parameter mismatch: %s" what
  | Graph_mismatch ->
    Format.fprintf ppf "snapshot graph fingerprint does not match this graph"
  | Malformed what -> Format.fprintf ppf "malformed snapshot: %s" what

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* CRC-32 (zlib polynomial, table-driven)                              *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref (Int32.of_int i) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc_update crc b len =
  let table = Lazy.force crc_table in
  let c = ref (Int32.lognot crc) in
  for i = 0 to len - 1 do
    let idx = Int32.to_int (Int32.logand !c 0xffl) lxor Char.code (Bytes.unsafe_get b i) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc_bytes b = crc_update 0l b (Bytes.length b)

let crc_string s = crc_bytes (Bytes.unsafe_of_string s)

(* ------------------------------------------------------------------ *)
(* Graph fingerprint                                                   *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over 64-bit words of the logical CSR (n, m, offsets,
   destinations, weight float bits). Hashing logical values through
   [Graph.view] makes the fingerprint independent of boxed-vs-packed
   storage; a float32-packed graph fingerprints differently from its
   float64 original because its weights genuinely differ. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv h x = Int64.mul (Int64.logxor h x) fnv_prime

let fnv_int h x = fnv h (Int64.of_int x)

let fingerprint g =
  let n = Graph.n g and m = Graph.m g in
  let h = ref (fnv_int (fnv_int fnv_offset n) m) in
  (match Graph.view g with
  | Graph.Boxed (off, dst, wgt) ->
    Array.iter (fun x -> h := fnv_int !h x) off;
    Array.iter (fun x -> h := fnv_int !h x) dst;
    Array.iter (fun w -> h := fnv !h (Int64.bits_of_float w)) wgt
  | Graph.Packed (off, dst, wgt) ->
    for i = 0 to Bigarray.Array1.dim off - 1 do
      h := fnv_int !h (Int32.to_int (Bigarray.Array1.unsafe_get off i))
    done;
    for i = 0 to Bigarray.Array1.dim dst - 1 do
      h := fnv_int !h (Int32.to_int (Bigarray.Array1.unsafe_get dst i))
    done;
    for i = 0 to 2 * m - 1 do
      h := fnv !h (Int64.bits_of_float (Graph.weight wgt i))
    done);
  !h

(* ------------------------------------------------------------------ *)
(* Sink: blob collection with physical dedup                           *)
(* ------------------------------------------------------------------ *)

type sink = { mutable blobs : blob list; mutable count : int }

let sink () = { blobs = []; count = 0 }

let blob_eq a b =
  match (a, b) with
  | I32 x, I32 y -> x == y
  | F32 x, F32 y -> x == y
  | F64 x, F64 y -> x == y
  | _ -> false

let put s b =
  (* Physical dedup keeps shared planes (e.g. a vicinity family referenced
     by both a scheme and its nested sequence router) stored once; the
     decoder re-shares them by id. Linear scan — a plane has tens of
     blobs, not thousands. *)
  let rec scan i = function
    | [] ->
      s.blobs <- b :: s.blobs;
      s.count <- s.count + 1;
      s.count - 1
    | x :: tl -> if blob_eq x b then s.count - 1 - i else scan (i + 1) tl
  in
  scan 0 s.blobs

let blob_elems = function
  | I32 a -> Bigarray.Array1.dim a
  | F32 a -> Bigarray.Array1.dim a
  | F64 a -> Bigarray.Array1.dim a

let blob_kind_code = function I32 _ -> 0 | F32 _ -> 1 | F64 _ -> 2

let elem_size = function 0 | 1 -> 4 | 2 -> 8 | _ -> invalid_arg "elem_size"

let blob_bytes b = blob_elems b * elem_size (blob_kind_code b)

(* ------------------------------------------------------------------ *)
(* Source: mapped blobs                                                *)
(* ------------------------------------------------------------------ *)

type source = { loaded : blob array }

let get_i32 src i =
  match src.loaded.(i) with
  | I32 a -> a
  | _ -> invalid_arg "Snapshot.get_i32: blob kind mismatch"

let get_f32 src i =
  match src.loaded.(i) with
  | F32 a -> a
  | _ -> invalid_arg "Snapshot.get_f32: blob kind mismatch"

let get_f64 src i =
  match src.loaded.(i) with
  | F64 a -> a
  | _ -> invalid_arg "Snapshot.get_f64: blob kind mismatch"

(* ------------------------------------------------------------------ *)
(* Format                                                              *)
(* ------------------------------------------------------------------ *)

(* The \r\n inside the magic catches text-mode line-ending mangling the
   way PNG's does. *)
let magic = "CRSNAP\r\n"

let version = 1

let align8 x = (x + 7) land lnot 7

(* Fixed-size part of a directory entry: kind u8, pad3, offset i64,
   elems i64, crc u32. *)
let dirent_size = 1 + 3 + 8 + 8 + 4

type dirent = { kind : int; offset : int; elems : int; crc : int32 }

let put_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let put_i32v buf (v : int32) =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  Buffer.add_bytes buf b

let put_i64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let put_raw64 buf (v : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

(* Header size up to (and excluding) the trailing header crc, for a given
   scheme-id length and blob count. *)
let header_size ~id_len ~nblobs =
  8 + 4 + 1 + 3 + 4 + id_len + (5 * 8) + 4 + (nblobs * dirent_size) + 8 + 8 + 4

let save ~path ~meta ~residue s =
  let blobs = Array.of_list (List.rev s.blobs) in
  let nblobs = Array.length blobs in
  let id_len = String.length meta.scheme_id in
  let hsize = header_size ~id_len ~nblobs + 4 in
  (* Lay the blobs out 8-aligned after the header; residue last. *)
  let offsets = Array.make nblobs 0 in
  let pos = ref (align8 hsize) in
  Array.iteri
    (fun i b ->
      offsets.(i) <- !pos;
      pos := align8 (!pos + blob_bytes b))
    blobs;
  let residue_off = !pos in
  let residue_len = String.length residue in
  let total = residue_off + residue_len in
  let tmp = path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* One shared char view of the whole file (this extends it), plus
           typed views per blob for the raw copies. *)
        let whole =
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| total |])
        in
        let blob_crcs = Array.make nblobs 0l in
        Array.iteri
          (fun i b ->
            let bytes = blob_bytes b in
            let elems = blob_elems b in
            let blit (type e el) (kind : (e, el) Bigarray.kind)
                (src : (e, el, Bigarray.c_layout) Bigarray.Array1.t) =
              let dst =
                Bigarray.array1_of_genarray
                  (Unix.map_file fd ~pos:(Int64.of_int offsets.(i)) kind
                     Bigarray.c_layout true [| elems |])
              in
              Bigarray.Array1.blit src dst
            in
            (match b with
            | I32 a -> blit Bigarray.int32 a
            | F32 a -> blit Bigarray.float32 a
            | F64 a -> blit Bigarray.float64 a);
            (* CRC the raw bytes as written. *)
            let chunk = Bytes.create 65536 in
            let crc = ref 0l in
            let off = ref 0 in
            while !off < bytes do
              let len = min 65536 (bytes - !off) in
              for j = 0 to len - 1 do
                Bytes.unsafe_set chunk j
                  (Bigarray.Array1.unsafe_get whole (offsets.(i) + !off + j))
              done;
              crc := crc_update !crc chunk len;
              off := !off + len
            done;
            blob_crcs.(i) <- !crc)
          blobs;
        (* Header, built last so it can embed the blob CRCs. *)
        let buf = Buffer.create hsize in
        Buffer.add_string buf magic;
        put_u32 buf version;
        Buffer.add_char buf (if Sys.big_endian then '\001' else '\000');
        Buffer.add_string buf "\000\000\000";
        put_u32 buf id_len;
        Buffer.add_string buf meta.scheme_id;
        put_i64 buf meta.seed;
        put_raw64 buf (Int64.bits_of_float meta.eps);
        put_i64 buf meta.n;
        put_i64 buf meta.m;
        put_raw64 buf meta.fingerprint;
        put_u32 buf nblobs;
        Array.iteri
          (fun i b ->
            Buffer.add_char buf (Char.chr (blob_kind_code b));
            Buffer.add_string buf "\000\000\000";
            put_i64 buf offsets.(i);
            put_i64 buf (blob_elems b);
            put_i32v buf blob_crcs.(i))
          blobs;
        put_i64 buf residue_off;
        put_i64 buf residue_len;
        put_i32v buf (crc_string residue);
        put_i32v buf (crc_bytes (Buffer.to_bytes buf));
        let header = Buffer.to_bytes buf in
        for j = 0 to Bytes.length header - 1 do
          Bigarray.Array1.unsafe_set whole j (Bytes.unsafe_get header j)
        done;
        String.iteri
          (fun j c -> Bigarray.Array1.unsafe_set whole (residue_off + j) c)
          residue);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Io (Unix.error_message e))
  | exception Sys_error m ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Io m)

type loaded = { meta : meta; source : source; residue : string }

let ( let* ) = Result.bind

let read_exact ic len =
  let b = Bytes.create len in
  match really_input ic b 0 len with
  | () -> Ok b
  | exception End_of_file -> Error Truncated

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let get_i64 b off = Int64.to_int (Bytes.get_int64_le b off)

let load ?(verify = true) path =
  match open_in_bin path with
  | exception Sys_error m -> Error (Io m)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let file_size = in_channel_length ic in
        (* Prelude: magic, version, endianness, scheme-id length. *)
        let* pre = read_exact ic 20 in
        let* () =
          if Bytes.sub_string pre 0 8 <> magic then Error Bad_magic else Ok ()
        in
        let v = get_u32 pre 8 in
        let* () = if v <> version then Error (Unsupported_version v) else Ok () in
        let endian = Bytes.get pre 12 in
        let* () =
          if endian <> (if Sys.big_endian then '\001' else '\000') then
            Error Endianness_mismatch
          else Ok ()
        in
        let id_len = get_u32 pre 16 in
        let* () =
          if id_len > 4096 then Error (Malformed "scheme id length") else Ok ()
        in
        (* Rest of the fixed-position header. *)
        let* mid = read_exact ic (id_len + (5 * 8) + 4) in
        let scheme_id = Bytes.sub_string mid 0 id_len in
        let seed = get_i64 mid id_len in
        let eps = Int64.float_of_bits (Bytes.get_int64_le mid (id_len + 8)) in
        let n = get_i64 mid (id_len + 16) in
        let m = get_i64 mid (id_len + 24) in
        let fp = Bytes.get_int64_le mid (id_len + 32) in
        let nblobs = get_u32 mid (id_len + 40) in
        let* () =
          if nblobs > 100_000 then Error (Malformed "blob count") else Ok ()
        in
        let* dir = read_exact ic ((nblobs * dirent_size) + 8 + 8 + 4 + 4) in
        let dirents =
          Array.init nblobs (fun i ->
              let o = i * dirent_size in
              {
                kind = Char.code (Bytes.get dir o);
                offset = get_i64 dir (o + 4);
                elems = get_i64 dir (o + 12);
                crc = Bytes.get_int32_le dir (o + 20);
              })
        in
        let tail = nblobs * dirent_size in
        let residue_off = get_i64 dir tail in
        let residue_len = get_i64 dir (tail + 8) in
        let residue_crc = Bytes.get_int32_le dir (tail + 16) in
        let header_crc = Bytes.get_int32_le dir (tail + 20) in
        (* Header CRC covers everything before its own 4 bytes. *)
        let hbytes =
          Bytes.concat Bytes.empty
            [ pre; mid; Bytes.sub dir 0 (Bytes.length dir - 4) ]
        in
        let* () =
          if crc_bytes hbytes <> header_crc then
            Error (Checksum_mismatch "header")
          else Ok ()
        in
        (* Bounds: every blob and the residue must live inside the file. *)
        let* () =
          if
            residue_len < 0 || residue_off < 0
            || residue_off + residue_len > file_size
          then Error Truncated
          else Ok ()
        in
        let* () =
          Array.fold_left
            (fun acc d ->
              let* () = acc in
              if d.kind < 0 || d.kind > 2 then Error (Malformed "blob kind")
              else if d.elems < 0 then Error (Malformed "blob length")
              else if d.offset < 0 || d.offset + (d.elems * elem_size d.kind) > file_size
              then Error Truncated
              else Ok ())
            (Ok ()) dirents
        in
        (* Residue bytes + CRC — validated here, before any caller
           unmarshals them. *)
        let* residue =
          seek_in ic residue_off;
          match read_exact ic residue_len with
          | Ok b -> Ok (Bytes.unsafe_to_string b)
          | Error _ -> Error Truncated
        in
        let* () =
          if crc_string residue <> residue_crc then
            Error (Checksum_mismatch "residue")
          else Ok ()
        in
        (* Optional blob verification: re-CRC the payload bytes from the
           channel (page cache) before handing out the mapped views. *)
        let* () =
          if not verify then Ok ()
          else begin
            let chunk = Bytes.create 65536 in
            let rec check_blob i =
              if i >= nblobs then Ok ()
              else begin
                let d = dirents.(i) in
                let bytes = d.elems * elem_size d.kind in
                seek_in ic d.offset;
                let crc = ref 0l in
                let off = ref 0 in
                let ok = ref true in
                while !ok && !off < bytes do
                  let len = min 65536 (bytes - !off) in
                  (match really_input ic chunk 0 len with
                  | () -> crc := crc_update !crc chunk len
                  | exception End_of_file -> ok := false);
                  off := !off + len
                done;
                if not !ok then Error Truncated
                else if !crc <> d.crc then
                  Error (Checksum_mismatch (Printf.sprintf "blob %d" i))
                else check_blob (i + 1)
              end
            in
            check_blob 0
          end
        in
        (* Map the blobs. The fd backing the maps is independent of [ic];
           mappings survive the close. *)
        let* loaded =
          match Unix.openfile path [ Unix.O_RDONLY ] 0 with
          | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
          | fd ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                try
                  Ok
                    (Array.map
                       (fun d ->
                         let map (type e el) (kind : (e, el) Bigarray.kind) :
                             (e, el, Bigarray.c_layout) Bigarray.Array1.t =
                           Bigarray.array1_of_genarray
                             (Unix.map_file fd ~pos:(Int64.of_int d.offset) kind
                                Bigarray.c_layout false [| d.elems |])
                         in
                         match d.kind with
                         | 0 -> I32 (map Bigarray.int32)
                         | 1 -> F32 (map Bigarray.float32)
                         | _ -> F64 (map Bigarray.float64))
                       dirents)
                with Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e)))
        in
        Ok
          {
            meta = { scheme_id; seed; eps; n; m; fingerprint = fp };
            source = { loaded };
            residue;
          })

let check loaded ~scheme_id ~seed ~eps ~graph =
  let m = loaded.meta in
  if m.scheme_id <> scheme_id then
    Error (Scheme_mismatch { expected = scheme_id; found = m.scheme_id })
  else if m.seed <> seed then Error (Params_mismatch "seed")
  else if m.eps <> eps then Error (Params_mismatch "eps")
  else if m.n <> Graph.n graph || m.m <> Graph.m graph then Error Graph_mismatch
  else if m.fingerprint <> fingerprint graph then Error Graph_mismatch
  else Ok ()
