open Cr_graph

(** The fixed-port network simulator.

    A routing scheme is exercised as a {e local step function}: at the vertex
    currently holding the message, the step function sees only that vertex's
    identity and the message header, and must either deliver or name an
    outgoing port. The simulator owns the topology: it resolves ports to
    neighbors, accumulates the traversed length, and aborts runaway routes.
    A scheme therefore cannot teleport or follow non-edges — if its local
    tables are wrong the simulated message goes astray and the tests see it.

    Every way a run can end is a structured {!verdict}; no exception escapes
    {!run} for any step function on any graph. An optional {!Fault.plan}
    subjects the run to link failures, vertex crashes, message drops and
    header corruption (see {!Fault}); with an empty plan the run is
    bit-identical to a fault-free one. *)

type 'h decision =
  | Deliver
  | Forward of int * 'h
      (** [Forward (port, header)]: send through [port] with a (possibly
          rewritten) header. *)

(** How a simulated run ended. *)
type verdict =
  | Delivered  (** the step function said [Deliver] at some vertex *)
  | Dropped_at of int
      (** the message was lost in flight right after this vertex transmitted
          it (a {!Fault.Drop} event, or a corruption the caller cannot
          apply) *)
  | Dead_end_at of int
      (** no progress is possible: the step function raised here, the
          message was sent into this crashed vertex, or the source itself is
          down *)
  | Link_down_at of int * int
      (** [(vertex, port)]: the step function insisted on a failed link and
          no bounce recovered *)
  | Hop_budget_exhausted
      (** the step function wanted another hop after [max_hops] traversals *)
  | Loop_detected of int
      (** the message revisited this vertex with a structurally identical
          header: with a deterministic step function the run could never
          terminate, so it is aborted in O(cycle) hops instead of burning
          the whole hop budget *)
  | Invalid_port of int * int
      (** [(vertex, port)]: the step function named a port the vertex does
          not have — a scheme bug, surfaced as data instead of an
          exception *)

type outcome = {
  verdict : verdict;     (** how the run ended *)
  final : int;           (** vertex where the simulation stopped *)
  path : int list;       (** vertices visited, source first *)
  length : float;        (** total weight of traversed edges *)
  hops : int;            (** number of edges traversed *)
  header_words_peak : int;  (** max header size seen, in O(log n)-bit words *)
}

val delivered : outcome -> bool
(** [delivered o] iff [o.verdict = Delivered] (possibly at the wrong
    vertex — combine with [final]). *)

val delivered_to : outcome -> int -> bool
(** [delivered_to o dst]: delivered, and at [dst]. *)

val verdict_name : verdict -> string
(** Short stable identifier, e.g. ["link-down"] — used by the CLI's exit
    diagnostics and the CSV mirrors. *)

val verdict_class : verdict -> int
(** Stable dense index of the verdict's constructor (payload dropped), in
    [[0, Array.length verdict_classes)] — the per-verdict counter slot the
    serve loop and batch engine bump. *)

val verdict_classes : string array
(** [verdict_classes.(verdict_class v) = verdict_name v] for every
    verdict: the display names of the counter slots, in index order. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Human-readable verdict with its location payload. *)

type hop_record = {
  at : int;            (** vertex holding the message *)
  port : int;          (** port it forwarded through ([-1] on deliver) *)
  header_words : int;  (** header size at this hop *)
}

val run :
  Graph.t ->
  src:int ->
  header:'h ->
  step:(at:int -> 'h -> 'h decision) ->
  header_words:('h -> int) ->
  ?max_hops:int ->
  ?on_hop:(hop_record -> unit) ->
  ?faults:Fault.plan ->
  ?on_bounce:(at:int -> dead:int list -> 'h -> 'h decision option) ->
  ?corrupt:('h -> 'h) ->
  ?record_path:bool ->
  ?detect_loops:bool ->
  unit ->
  outcome
(** [run g ~src ~header ~step ~header_words ()] injects a message at [src]
    and applies [step] until it delivers or the run ends with a non-
    [Delivered] verdict. [on_hop] observes each transmission (used by the
    CLI's trace mode).

    {b Hop budget.} A forward is refused {e before} the edge is traversed
    once [max_hops] (default [4 * n + 16]) edges have been crossed, so a run
    never exceeds its budget and a route of exactly [max_hops] hops still
    delivers.

    {b Faults.} With [?faults], each forward first consults the plan:
    - a failed link, or a crashed endpoint, is {e locally observable at the
      sender}: the message stays put and [on_bounce ~at ~dead hdr] is asked
      for an alternative, where [dead] lists the ports already refused at
      this vertex (most recent first). Returning [None] — or running out of
      ports, or having no [on_bounce] — ends the run with [Link_down_at]
      (or [Dead_end_at] when the far endpoint crashed over a healthy link);
    - a {!Fault.Drop} event loses the message in flight ([Dropped_at]);
    - a {!Fault.Corrupt} event applies [corrupt] to the in-flight header; if
      no [corrupt] is supplied the garbled message is undeliverable and
      counts as a drop.

    {b Path recording} (on by default): with [~record_path:false] the
    returned [path] is [[]] and the run allocates nothing per hop for it.
    Nothing else changes — verdict, final vertex, length, hop count and
    header peak are identical; the throughput engine turns it off and
    relies on the hop budget.

    {b Loop detection} (on by default, disable with [~detect_loops:false]):
    the simulator keeps signatures of visited [(vertex, header)] states and
    aborts with [Loop_detected] when one repeats exactly. Headers are
    compared structurally, so a vertex may be revisited with a different
    header; a repeat is only declared when the deterministic step function
    is provably cycling. The structural hash of the header is cached while
    the step function forwards the same physical header, so long
    unrewritten stretches hash once, not once per hop.

    {b No exceptions.} An invalid port becomes [Invalid_port]; a step
    function that raises becomes [Dead_end_at]. Only [src] out of range is
    a caller bug and still raises [Invalid_argument].

    {b Telemetry.} When {!Telemetry.on} is set the run increments this
    domain's counter shard (routes, hops, table lookups, bounces,
    drop/corrupt/deliver verdicts) and, inside {!Telemetry.with_trace},
    emits one trace event per hop, bounce, fault verdict and run end.
    Instrumentation never changes the outcome; disabled, it costs one
    boolean test per instrumentation point and allocates nothing. *)
