open Cr_graph

(** The fixed-port network simulator.

    A routing scheme is exercised as a {e local step function}: at the vertex
    currently holding the message, the step function sees only that vertex's
    identity and the message header, and must either deliver or name an
    outgoing port. The simulator owns the topology: it resolves ports to
    neighbors, accumulates the traversed length, and aborts runaway routes.
    A scheme therefore cannot teleport or follow non-edges — if its local
    tables are wrong the simulated message goes astray and the tests see it. *)

type 'h decision =
  | Deliver
  | Forward of int * 'h
      (** [Forward (port, header)]: send through [port] with a (possibly
          rewritten) header. *)

type outcome = {
  delivered : bool;      (** the step function said [Deliver] at some vertex *)
  final : int;           (** vertex where the simulation stopped *)
  path : int list;       (** vertices visited, source first *)
  length : float;        (** total weight of traversed edges *)
  hops : int;            (** number of edges traversed *)
  header_words_peak : int;  (** max header size seen, in O(log n)-bit words *)
}

type hop_record = {
  at : int;            (** vertex holding the message *)
  port : int;          (** port it forwarded through ([-1] on deliver) *)
  header_words : int;  (** header size at this hop *)
}

val run :
  Graph.t ->
  src:int ->
  header:'h ->
  step:(at:int -> 'h -> 'h decision) ->
  header_words:('h -> int) ->
  ?max_hops:int ->
  ?on_hop:(hop_record -> unit) ->
  unit ->
  outcome
(** [run g ~src ~header ~step ~header_words ()] injects a message at [src]
    and applies [step] until it delivers or [max_hops] (default [4 * n + 16])
    edges have been traversed. [on_hop] observes each local decision (used
    by the CLI's trace mode).
    @raise Invalid_argument if [step] names an invalid port. *)
